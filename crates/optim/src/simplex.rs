//! A dense two-phase primal simplex LP solver.
//!
//! This is the workspace's substitute for the commercial solver (Mosek)
//! the paper used to solve its benchmark programs. It is a textbook
//! implementation tuned for clarity and robustness over speed:
//!
//! * two-phase method (phase 1 drives artificial variables to zero, so
//!   infeasibility detection is exact up to tolerance);
//! * Bland's pivoting rule throughout — slower than Dantzig but immune to
//!   cycling, which matters because set-cover relaxations are massively
//!   degenerate;
//! * dense tableau — epoch instances compress to a few hundred columns
//!   (see `instance`), well within dense territory.

use serde::{Deserialize, Serialize};

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// A linear program: minimize `c·x` subject to constraints and `x ≥ 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearProgram {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<(Vec<f64>, Relation, f64)>,
}

/// A solved LP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Optimal point (length `num_vars`).
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
}

/// Solver outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LpOutcome {
    /// Finite optimum found.
    Optimal(LpSolution),
    /// No feasible point.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
}

const EPS: f64 = 1e-9;

impl LinearProgram {
    /// A program over `num_vars` non-negative variables with zero
    /// objective.
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of one variable.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        self.objective[var] = coeff;
    }

    /// Adds a constraint given as sparse `(var, coeff)` terms.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], rel: Relation, rhs: f64) {
        let mut row = vec![0.0; self.num_vars];
        for (v, c) in terms {
            assert!(*v < self.num_vars, "variable {v} out of range");
            row[*v] += c;
        }
        self.constraints.push((row, rel, rhs));
    }

    /// Solves the program.
    pub fn solve(&self) -> LpOutcome {
        Tableau::build(self).solve()
    }
}

/// Dense simplex tableau with explicit basis bookkeeping.
struct Tableau {
    /// `m × (total_cols)` coefficient matrix.
    a: Vec<Vec<f64>>,
    /// Right-hand sides, all non-negative after normalization.
    b: Vec<f64>,
    /// Basis variable per row.
    basis: Vec<usize>,
    /// Structural variable count (prefix of columns).
    n: usize,
    /// First artificial column (artificials occupy `art_start..total`).
    art_start: usize,
    /// Total column count.
    total: usize,
    /// Original objective (padded to `total`).
    cost: Vec<f64>,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Self {
        let m = lp.constraints.len();
        let n = lp.num_vars;

        // Normalize to non-negative rhs.
        let rows: Vec<(Vec<f64>, Relation, f64)> = lp
            .constraints
            .iter()
            .map(|(coeffs, rel, rhs)| {
                if *rhs < 0.0 {
                    let flipped = match rel {
                        Relation::Le => Relation::Ge,
                        Relation::Ge => Relation::Le,
                        Relation::Eq => Relation::Eq,
                    };
                    (coeffs.iter().map(|c| -c).collect(), flipped, -rhs)
                } else {
                    (coeffs.clone(), *rel, *rhs)
                }
            })
            .collect();

        let num_slack = rows
            .iter()
            .filter(|(_, r, _)| matches!(r, Relation::Le | Relation::Ge))
            .count();
        let num_art = rows
            .iter()
            .filter(|(_, r, _)| matches!(r, Relation::Ge | Relation::Eq))
            .count();
        let art_start = n + num_slack;
        let total = art_start + num_art;

        let mut a = vec![vec![0.0; total]; m];
        let mut b = vec![0.0; m];
        let mut basis = vec![0usize; m];
        let mut next_slack = n;
        let mut next_art = art_start;

        for (i, (coeffs, rel, rhs)) in rows.iter().enumerate() {
            a[i][..n].copy_from_slice(coeffs);
            b[i] = *rhs;
            match rel {
                Relation::Le => {
                    a[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    a[i][next_slack] = -1.0;
                    next_slack += 1;
                    a[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Relation::Eq => {
                    a[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }

        let mut cost = vec![0.0; total];
        cost[..n].copy_from_slice(&lp.objective);

        Self {
            a,
            b,
            basis,
            n,
            art_start,
            total,
            cost,
        }
    }

    fn solve(mut self) -> LpOutcome {
        // Phase 1: minimize the sum of artificials.
        if self.art_start < self.total {
            let phase1: Vec<f64> = (0..self.total)
                .map(|j| if j >= self.art_start { 1.0 } else { 0.0 })
                .collect();
            match self.run(&phase1, true) {
                RunOutcome::Optimal(obj) => {
                    if obj > 1e-7 {
                        return LpOutcome::Infeasible;
                    }
                }
                RunOutcome::Unbounded => {
                    unreachable!("phase-1 objective is bounded below by 0")
                }
            }
            self.evict_artificials();
        }

        // Phase 2: the real objective, artificials frozen out.
        let cost = self.cost.clone();
        match self.run(&cost, false) {
            RunOutcome::Optimal(obj) => {
                let mut x = vec![0.0; self.n];
                for (row, &bv) in self.basis.iter().enumerate() {
                    if bv < self.n {
                        x[bv] = self.b[row];
                    }
                }
                LpOutcome::Optimal(LpSolution { x, objective: obj })
            }
            RunOutcome::Unbounded => LpOutcome::Unbounded,
        }
    }

    /// Pivot any artificial still basic (at level ~0 after phase 1) out of
    /// the basis, or drop its (redundant) row.
    fn evict_artificials(&mut self) {
        let mut row = 0;
        while row < self.a.len() {
            if self.basis[row] >= self.art_start {
                // Find a non-artificial column to pivot in.
                let col = (0..self.art_start).find(|&j| self.a[row][j].abs() > 1e-7);
                match col {
                    Some(j) => self.pivot(row, j),
                    None => {
                        // Redundant constraint: remove the row.
                        self.a.remove(row);
                        self.b.remove(row);
                        self.basis.remove(row);
                        continue;
                    }
                }
            }
            row += 1;
        }
    }

    /// Runs simplex iterations for the given cost vector. When
    /// `allow_artificials` is false, artificial columns never enter.
    fn run(&mut self, cost: &[f64], allow_artificials: bool) -> RunOutcome {
        loop {
            let reduced = self.reduced_costs(cost);
            // Bland's rule: smallest-index column with negative reduced
            // cost.
            let limit = if allow_artificials {
                self.total
            } else {
                self.art_start
            };
            let entering = (0..limit).find(|&j| reduced[j] < -EPS);
            let Some(e) = entering else {
                let obj = self.objective_value(cost);
                return RunOutcome::Optimal(obj);
            };

            // Ratio test (Bland tie-break on basis index).
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.a.len() {
                let coef = self.a[r][e];
                if coef > EPS {
                    let ratio = self.b[r] / coef;
                    let better = match leave {
                        None => true,
                        Some((lr, lratio)) => {
                            ratio < lratio - EPS
                                || (ratio < lratio + EPS && self.basis[r] < self.basis[lr])
                        }
                    };
                    if better {
                        leave = Some((r, ratio));
                    }
                }
            }
            let Some((lr, _)) = leave else {
                return RunOutcome::Unbounded;
            };
            self.pivot(lr, e);
        }
    }

    fn reduced_costs(&self, cost: &[f64]) -> Vec<f64> {
        // y = c_B B⁻¹ is implicit: the tableau is kept in canonical form,
        // so reduced cost_j = c_j − Σ_rows c_{basis(r)} · a[r][j].
        let mut rc = cost.to_vec();
        for (r, &bv) in self.basis.iter().enumerate() {
            let cb = cost[bv];
            if cb != 0.0 {
                for (rcj, aj) in rc.iter_mut().zip(&self.a[r]) {
                    *rcj -= cb * aj;
                }
            }
        }
        rc
    }

    fn objective_value(&self, cost: &[f64]) -> f64 {
        self.basis
            .iter()
            .enumerate()
            .map(|(r, &bv)| cost[bv] * self.b[r])
            .sum()
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.a[row][col];
        debug_assert!(p.abs() > EPS, "pivot on ~0");
        for j in 0..self.total {
            self.a[row][j] /= p;
        }
        self.b[row] /= p;
        for r in 0..self.a.len() {
            if r == row {
                continue;
            }
            let f = self.a[r][col];
            if f.abs() > EPS {
                for j in 0..self.total {
                    self.a[r][j] -= f * self.a[row][j];
                }
                self.b[r] -= f * self.b[row];
                if self.b[r].abs() < EPS {
                    self.b[r] = 0.0;
                }
            }
        }
        self.basis[row] = col;
    }
}

enum RunOutcome {
    Optimal(f64),
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} ≉ {b}");
    }

    #[test]
    fn basic_maximization_as_min() {
        // max x + y s.t. x + y ≤ 4, x ≤ 2 ⇒ min −x−y, optimum −4.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, -1.0);
        lp.set_objective(1, -1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
        match lp.solve() {
            LpOutcome::Optimal(s) => {
                assert_near(s.objective, -4.0);
                assert_near(s.x[0] + s.x[1], 4.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn ge_constraints_and_phase1() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 ⇒ x=10, y=0, obj 20.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 2.0);
        lp.set_objective(1, 3.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        match lp.solve() {
            LpOutcome::Optimal(s) => {
                assert_near(s.objective, 20.0);
                assert_near(s.x[0], 10.0);
                assert_near(s.x[1], 0.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 6, x − y = 0 ⇒ x = y = 2, obj 4.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Eq, 6.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 0.0);
        match lp.solve() {
            LpOutcome::Optimal(s) => {
                assert_near(s.objective, 4.0);
                assert_near(s.x[0], 2.0);
                assert_near(s.x[1], 2.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, -1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x ≥ −5 written as −x ≤ 5… feed as (−1)x ≥ −3 ⇒ x ≤ 3.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, -1.0);
        lp.add_constraint(&[(0, -1.0)], Relation::Ge, -3.0);
        match lp.solve() {
            LpOutcome::Optimal(s) => assert_near(s.x[0], 3.0),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Beale's classic cycling example (cycles under naive Dantzig).
        let mut lp = LinearProgram::new(4);
        let c = [-0.75, 150.0, -0.02, 6.0];
        for (i, ci) in c.iter().enumerate() {
            lp.set_objective(i, *ci);
        }
        lp.add_constraint(
            &[(0, 0.25), (1, -60.0), (2, -1.0 / 25.0), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(
            &[(0, 0.5), (1, -90.0), (2, -1.0 / 50.0), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(&[(2, 1.0)], Relation::Le, 1.0);
        match lp.solve() {
            LpOutcome::Optimal(s) => assert_near(s.objective, -0.05),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn set_cover_relaxation_bounds_integer_optimum() {
        // Rows {0,1} {1,2} {2,0}: LP optimum 1.5 (x = ½ each); ILP needs 2.
        let mut lp = LinearProgram::new(3);
        for v in 0..3 {
            lp.set_objective(v, 1.0);
        }
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 1.0);
        lp.add_constraint(&[(1, 1.0), (2, 1.0)], Relation::Ge, 1.0);
        lp.add_constraint(&[(2, 1.0), (0, 1.0)], Relation::Ge, 1.0);
        match lp.solve() {
            LpOutcome::Optimal(s) => assert_near(s.objective, 1.5),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn redundant_equalities_handled() {
        // Duplicate equality rows force a redundant row through phase 1.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        match lp.solve() {
            LpOutcome::Optimal(s) => {
                assert_near(s.objective, 0.0);
                assert_near(s.x[0], 0.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn zero_constraint_lp() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        match lp.solve() {
            LpOutcome::Optimal(s) => assert_near(s.objective, 0.0),
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
