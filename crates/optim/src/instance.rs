//! Problem instances: the routing matrix restricted to failed flows.
//!
//! The paper's `A` is a `C × L` routing matrix over *all* links, but any
//! link absent from every failed flow's path has an all-zero column and
//! can never enter a minimal solution; instances therefore compress to the
//! candidate links that actually appear. Rows keep their *demand*: 1 for
//! the binary program (3) (the flow retransmitted) or `c_i` for the
//! integer program (4) (how many retransmissions).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One failed flow as raw data: the link ids on its (discovered) path and
/// its retransmission count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRow {
    /// Link ids (opaque to this crate — callers pass `LinkId.0`).
    pub links: Vec<u32>,
    /// Retransmissions (`c_i ≥ 1`; the binary program reads this as 1).
    pub demand: u32,
}

/// A compressed instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverInstance {
    /// Candidate link ids, sorted ascending; columns of the compressed
    /// matrix.
    candidates: Vec<u32>,
    /// Rows as candidate-index lists (sorted, deduped), with demand.
    rows: Vec<Row>,
    /// Every input row unmerged (attribution needs per-flow demands).
    raw: Vec<Row>,
    /// `‖c‖₁` over all input rows (kept before any row dedup).
    total_demand: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Row {
    pub cand: Vec<usize>,
    pub demand: u32,
}

impl CoverInstance {
    /// Builds an instance from failed flows. Rows with empty link sets
    /// (flows whose path discovery failed entirely) are dropped — no link
    /// can explain them. Duplicate link-sets are merged keeping the
    /// *maximum* demand (the binding constraint); the `‖c‖₁` budget keeps
    /// the true total.
    pub fn new(flows: &[FlowRow]) -> Self {
        let mut total_demand = 0u64;
        let mut candidates: Vec<u32> = Vec::new();
        {
            let mut seen = std::collections::BTreeSet::new();
            for f in flows {
                if f.links.is_empty() {
                    continue;
                }
                total_demand += u64::from(f.demand.max(1));
                for l in &f.links {
                    seen.insert(*l);
                }
            }
            candidates.extend(seen);
        }
        let index: HashMap<u32, usize> = candidates
            .iter()
            .enumerate()
            .map(|(i, l)| (*l, i))
            .collect();

        let mut merged: HashMap<Vec<usize>, u32> = HashMap::new();
        let mut raw: Vec<Row> = Vec::new();
        for f in flows {
            if f.links.is_empty() {
                continue;
            }
            let mut cand: Vec<usize> = f.links.iter().map(|l| index[l]).collect();
            cand.sort_unstable();
            cand.dedup();
            raw.push(Row {
                cand: cand.clone(),
                demand: f.demand.max(1),
            });
            let e = merged.entry(cand).or_insert(0);
            *e = (*e).max(f.demand.max(1));
        }
        let mut rows: Vec<Row> = merged
            .into_iter()
            .map(|(cand, demand)| Row { cand, demand })
            .collect();
        // Deterministic order: by link set.
        rows.sort_by(|a, b| a.cand.cmp(&b.cand).then(a.demand.cmp(&b.demand)));
        Self {
            candidates,
            rows,
            raw,
            total_demand,
        }
    }

    /// Candidate link ids (columns), ascending.
    pub fn candidates(&self) -> &[u32] {
        &self.candidates
    }

    /// Number of (merged) rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of candidate links.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// The `‖c‖₁` budget (total retransmissions over all input rows).
    pub fn total_demand(&self) -> u64 {
        self.total_demand
    }

    /// True when there is nothing to explain.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub(crate) fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub(crate) fn raw_rows(&self) -> &[Row] {
        &self.raw
    }

    /// Translates a candidate index back to its link id.
    pub fn link_of(&self, cand: usize) -> u32 {
        self.candidates[cand]
    }

    /// Whether the candidate set indexed by `picked` covers every row.
    pub fn covers(&self, picked: &[usize]) -> bool {
        let set: std::collections::HashSet<usize> = picked.iter().copied().collect();
        self.rows
            .iter()
            .all(|r| r.cand.iter().any(|c| set.contains(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows() -> Vec<FlowRow> {
        vec![
            FlowRow {
                links: vec![10, 20, 30],
                demand: 2,
            },
            FlowRow {
                links: vec![20, 40],
                demand: 1,
            },
            FlowRow {
                links: vec![30, 20, 10],
                demand: 5,
            }, // same set as row 0
            FlowRow {
                links: vec![],
                demand: 9,
            }, // unexplainable, dropped
        ]
    }

    #[test]
    fn compression_and_dedup() {
        let inst = CoverInstance::new(&flows());
        assert_eq!(inst.candidates(), &[10, 20, 30, 40]);
        assert_eq!(inst.num_rows(), 2, "duplicate sets merged");
        // Budget counts all non-empty rows: 2 + 1 + 5 = 8.
        assert_eq!(inst.total_demand(), 8);
        // Merged row keeps the max demand (5).
        assert!(inst.rows().iter().any(|r| r.demand == 5));
    }

    #[test]
    fn covers_checks_all_rows() {
        let inst = CoverInstance::new(&flows());
        let idx20 = inst.candidates().iter().position(|l| *l == 20).unwrap();
        assert!(inst.covers(&[idx20]), "link 20 hits both rows");
        let idx10 = inst.candidates().iter().position(|l| *l == 10).unwrap();
        assert!(!inst.covers(&[idx10]), "link 10 misses the second row");
        assert!(!inst.covers(&[]));
    }

    #[test]
    fn empty_instance() {
        let inst = CoverInstance::new(&[]);
        assert!(inst.is_empty());
        assert_eq!(inst.total_demand(), 0);
        assert!(inst.covers(&[]), "vacuously covered");
    }

    #[test]
    fn zero_demand_treated_as_one() {
        let inst = CoverInstance::new(&[FlowRow {
            links: vec![1],
            demand: 0,
        }]);
        assert_eq!(inst.total_demand(), 1);
        assert_eq!(inst.rows()[0].demand, 1);
    }

    #[test]
    fn duplicate_links_in_row_deduped() {
        let inst = CoverInstance::new(&[FlowRow {
            links: vec![7, 7, 7],
            demand: 3,
        }]);
        assert_eq!(inst.rows()[0].cand.len(), 1);
    }
}
