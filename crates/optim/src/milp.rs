//! Branch-and-bound mixed-integer solver on top of the simplex.
//!
//! This is the literal "solve (3)/(4) with a MILP solver" route the paper
//! took with Mosek. Depth-first branch and bound: solve the LP relaxation,
//! pick the most fractional integer variable, branch `x ≤ ⌊v⌋` /
//! `x ≥ ⌈v⌉`, prune on incumbent. A node budget keeps adversarial
//! instances from hanging; exceeding it returns the best incumbent with
//! `optimal = false`.

use crate::simplex::{LinearProgram, LpOutcome, Relation};
use serde::{Deserialize, Serialize};

/// Node budget for the search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MilpLimits {
    /// Maximum LP relaxations solved.
    pub max_nodes: u64,
}

impl Default for MilpLimits {
    fn default() -> Self {
        Self { max_nodes: 50_000 }
    }
}

/// MILP outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MilpOutcome {
    /// Proven optimal integer solution.
    Optimal {
        /// Optimal point.
        x: Vec<f64>,
        /// Objective value.
        objective: f64,
    },
    /// Best incumbent when the node budget ran out.
    Budget {
        /// Incumbent, if any was found.
        incumbent: Option<(Vec<f64>, f64)>,
    },
    /// No feasible integer point.
    Infeasible,
    /// The relaxation (hence the MILP) is unbounded.
    Unbounded,
}

const INT_TOL: f64 = 1e-6;

/// Minimizes the program with the given variables required integral.
pub fn solve_milp(lp: &LinearProgram, integer_vars: &[usize], limits: &MilpLimits) -> MilpOutcome {
    let mut nodes = 0u64;
    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    // DFS over (program-with-extra-bounds).
    let mut stack: Vec<LinearProgram> = vec![lp.clone()];
    let mut exhausted = false;
    let mut root_unbounded = false;

    while let Some(node_lp) = stack.pop() {
        if nodes >= limits.max_nodes {
            exhausted = true;
            break;
        }
        nodes += 1;
        let relaxed = node_lp.solve();
        match relaxed {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                if nodes == 1 {
                    root_unbounded = true;
                    break;
                }
                // A bounded-feasible-region subproblem cannot be unbounded
                // if the root was not; treat defensively as prune-less
                // branch (cannot bound) — branch further is impossible, so
                // skip.
                continue;
            }
            LpOutcome::Optimal(sol) => {
                // Bound: the relaxation already matches/exceeds the
                // incumbent ⇒ prune.
                if let Some((_, best)) = &incumbent {
                    if sol.objective >= best - 1e-9 {
                        continue;
                    }
                }
                // Find the most fractional integer variable.
                let frac_var = integer_vars
                    .iter()
                    .map(|&v| {
                        let val = sol.x[v];
                        let frac = (val - val.round()).abs();
                        (v, val, frac)
                    })
                    .filter(|(_, _, frac)| *frac > INT_TOL)
                    .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite fractions"));

                match frac_var {
                    None => {
                        // Integral: new incumbent.
                        let better = incumbent
                            .as_ref()
                            .is_none_or(|(_, best)| sol.objective < best - 1e-9);
                        if better {
                            incumbent = Some((sol.x.clone(), sol.objective));
                        }
                    }
                    Some((v, val, _)) => {
                        let floor = val.floor();
                        // Explore the "down" branch first (slightly better
                        // for covering problems); pushed last = popped
                        // first.
                        let mut up = node_lp.clone();
                        up.add_constraint(&[(v, 1.0)], Relation::Ge, floor + 1.0);
                        stack.push(up);
                        let mut down = node_lp.clone();
                        down.add_constraint(&[(v, 1.0)], Relation::Le, floor);
                        stack.push(down);
                    }
                }
            }
        }
    }

    if root_unbounded {
        return MilpOutcome::Unbounded;
    }
    if exhausted {
        return MilpOutcome::Budget { incumbent };
    }
    match incumbent {
        Some((x, objective)) => MilpOutcome::Optimal { x, objective },
        None => MilpOutcome::Infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} ≉ {b}");
    }

    #[test]
    fn knapsack_style() {
        // min −(3x + 4y) s.t. 2x + 3y ≤ 6, x,y ∈ ℤ≥0: best is x=3,y=0
        // (obj −9) vs LP relax x=3,y=0 already integral… make it
        // fractional: 2x + 3y ≤ 7 ⇒ LP x=3.5 (obj −10.5), ILP x=3,y=0 → −9
        // vs x=2,y=1 → −10. Optimal −10.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, -3.0);
        lp.set_objective(1, -4.0);
        lp.add_constraint(&[(0, 2.0), (1, 3.0)], Relation::Le, 7.0);
        match solve_milp(&lp, &[0, 1], &MilpLimits::default()) {
            MilpOutcome::Optimal { x, objective } => {
                assert_near(objective, -10.0);
                assert_near(x[0], 2.0);
                assert_near(x[1], 1.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn set_cover_triangle_needs_two() {
        // LP gives 1.5 (all halves); ILP must pick 2 of the 3 links.
        let mut lp = LinearProgram::new(3);
        for v in 0..3 {
            lp.set_objective(v, 1.0);
            lp.add_constraint(&[(v, 1.0)], Relation::Le, 1.0);
        }
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 1.0);
        lp.add_constraint(&[(1, 1.0), (2, 1.0)], Relation::Ge, 1.0);
        lp.add_constraint(&[(2, 1.0), (0, 1.0)], Relation::Ge, 1.0);
        match solve_milp(&lp, &[0, 1, 2], &MilpLimits::default()) {
            MilpOutcome::Optimal { objective, x } => {
                assert_near(objective, 2.0);
                let ones = x.iter().filter(|v| (**v - 1.0).abs() < 1e-6).count();
                assert_eq!(ones, 2);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn integral_relaxation_short_circuits() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 3.0);
        match solve_milp(&lp, &[0], &MilpLimits::default()) {
            MilpOutcome::Optimal { x, objective } => {
                assert_near(objective, 3.0);
                assert_near(x[0], 3.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_milp() {
        // 2x = 1 with x integer: LP feasible (x=0.5), ILP infeasible.
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[(0, 2.0)], Relation::Eq, 1.0);
        assert_eq!(
            solve_milp(&lp, &[0], &MilpLimits::default()),
            MilpOutcome::Infeasible
        );
    }

    #[test]
    fn unbounded_milp() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, -1.0);
        assert_eq!(
            solve_milp(&lp, &[0], &MilpLimits::default()),
            MilpOutcome::Unbounded
        );
    }

    #[test]
    fn node_budget_reports_incumbent() {
        // A small cover instance with budget 1: root LP is fractional, so
        // no incumbent can exist yet.
        let mut lp = LinearProgram::new(3);
        for v in 0..3 {
            lp.set_objective(v, 1.0);
        }
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 1.0);
        lp.add_constraint(&[(1, 1.0), (2, 1.0)], Relation::Ge, 1.0);
        lp.add_constraint(&[(2, 1.0), (0, 1.0)], Relation::Ge, 1.0);
        match solve_milp(&lp, &[0, 1, 2], &MilpLimits { max_nodes: 1 }) {
            MilpOutcome::Budget { .. } => {}
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // min x + y, x integer, y continuous; x + y ≥ 2.5, x ≥ 1 ⇒
        // best x=1, y=1.5 (obj 2.5) — y may stay fractional.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 2.5);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        match solve_milp(&lp, &[0], &MilpLimits::default()) {
            MilpOutcome::Optimal { x, objective } => {
                assert_near(objective, 2.5);
                assert!((x[0] - x[0].round()).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
