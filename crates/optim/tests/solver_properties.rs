//! Property-based cross-validation of the solver stack: the simplex, the
//! MILP branch-and-bound, the exact set cover, and the greedy
//! approximation must agree with each other on randomized instances.

use proptest::prelude::*;
use vigil_optim::milp::{solve_milp, MilpLimits};
use vigil_optim::programs::integer_program_milp;
use vigil_optim::programs::MilpProgramLimits;
use vigil_optim::{
    binary_program, greedy_cover, integer_program, min_set_cover, CoverInstance, FlowRow,
    LinearProgram, LpOutcome, Relation, SearchLimits,
};

fn arb_instance() -> impl Strategy<Value = CoverInstance> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0u32..8, 1..4),
            1u32..5, // demand
        ),
        1..7,
    )
    .prop_map(|rows| {
        CoverInstance::new(
            &rows
                .into_iter()
                .map(|(links, demand)| FlowRow { links, demand })
                .collect::<Vec<_>>(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The exact search lower-bounds greedy, and the literal MILP route
    /// agrees with the structure-theorem route on ‖p‖₀ — the crate-level
    /// equivalence, fuzzed.
    #[test]
    fn exact_greedy_and_milp_agree(instance in arb_instance()) {
        let exact = min_set_cover(&instance, &SearchLimits::default());
        prop_assert!(exact.optimal);
        let greedy = greedy_cover(&instance, false);
        prop_assert!(exact.picked.len() <= greedy.len());

        let milp = integer_program_milp(&instance, &MilpProgramLimits::default());
        if let Some(sol) = milp {
            prop_assert!(sol.optimal);
            prop_assert_eq!(sol.counts.len(), exact.picked.len(),
                "MILP ‖p‖₀ must equal the exact cover size");
        }
    }

    /// Exact binary-program solutions always cover and are irredundant.
    #[test]
    fn binary_solutions_cover_minimally(instance in arb_instance()) {
        let sol = binary_program(&instance, &SearchLimits::default());
        prop_assert!(sol.optimal);
        let picked: Vec<usize> = sol
            .links
            .iter()
            .map(|l| instance.candidates().binary_search(l).expect("solution links are candidates"))
            .collect();
        prop_assert!(instance.covers(&picked));
    }

    /// The integer program's counts satisfy the budget and per-row
    /// demands (Ap ≥ c, ‖p‖₁ = ‖c‖₁).
    #[test]
    fn integer_counts_feasible(rows in proptest::collection::vec(
        (proptest::collection::vec(0u32..8, 1..4), 1u32..5), 1..7))
    {
        let flows: Vec<FlowRow> = rows
            .iter()
            .map(|(links, demand)| FlowRow { links: links.clone(), demand: *demand })
            .collect();
        let instance = CoverInstance::new(&flows);
        let sol = integer_program(&instance, &SearchLimits::default());
        prop_assert!(sol.optimal);
        let total: u64 = sol.counts.values().sum();
        prop_assert_eq!(total, instance.total_demand(), "‖p‖₁ = ‖c‖₁");
        for f in &flows {
            let covered: u64 = f.links.iter().filter_map(|l| sol.counts.get(l)).sum();
            prop_assert!(covered >= u64::from(f.demand),
                "row {:?} demand {} but path mass {}", f.links, f.demand, covered);
        }
    }

    /// Random small LPs: when the simplex reports optimal, the point is
    /// primal-feasible and no coordinate is negative.
    #[test]
    fn simplex_optimal_points_are_feasible(
        n in 1usize..5,
        rows in proptest::collection::vec(
            (proptest::collection::vec(0u64..100, 1..5), 0u64..50), 1..5),
        costs in proptest::collection::vec(0u64..10, 5))
    {
        let mut lp = LinearProgram::new(n);
        for v in 0..n {
            lp.set_objective(v, costs[v] as f64 / 2.0 + 0.5);
        }
        let mut dense_rows: Vec<(Vec<f64>, f64)> = Vec::new();
        for (coeffs, rhs) in &rows {
            let mut row = vec![0.0; n];
            for (i, c) in coeffs.iter().enumerate() {
                row[i % n] += *c as f64 / 10.0;
            }
            let rhs = *rhs as f64 / 10.0;
            let terms: Vec<(usize, f64)> =
                row.iter().enumerate().map(|(v, c)| (v, *c)).collect();
            lp.add_constraint(&terms, Relation::Ge, rhs);
            dense_rows.push((row, rhs));
        }
        if let LpOutcome::Optimal(sol) = lp.solve() {
            for x in &sol.x {
                prop_assert!(*x >= -1e-7, "negative coordinate {x}");
            }
            for (row, rhs) in &dense_rows {
                let lhs: f64 = row.iter().zip(&sol.x).map(|(a, x)| a * x).sum();
                prop_assert!(lhs + 1e-6 >= *rhs, "violated: {lhs} < {rhs}");
            }
        }
    }

    /// MILP integer solutions respect the bounds and integrality.
    #[test]
    fn milp_solutions_integral(rhs_tenths in 5u64..60) {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.3);
        let rhs = rhs_tenths as f64 / 10.0;
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, rhs);
        match solve_milp(&lp, &[0, 1], &MilpLimits::default()) {
            vigil_optim::milp::MilpOutcome::Optimal { x, objective } => {
                for v in &x {
                    prop_assert!((v - v.round()).abs() < 1e-6);
                }
                prop_assert!(x[0] + x[1] + 1e-6 >= rhs);
                // Best integer solution: all mass on the cheaper variable.
                prop_assert!((objective - rhs.ceil()).abs() < 1e-6);
            }
            other => prop_assert!(false, "expected optimal, got {other:?}"),
        }
    }
}
