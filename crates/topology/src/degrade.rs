//! Degraded / asymmetric Clos knobs.
//!
//! A symmetric Clos is the paper's evaluation fabric, but production
//! fabrics rarely stay symmetric: spine links get withdrawn for
//! maintenance, fail outright, or are simply absent mid-rollout. Each
//! withdrawal shrinks ECMP groups *non-uniformly* — some T1s keep more
//! T2 uplinks than others — so path diversity, and with it Theorem 2's
//! amplification factor `α`, varies across the fabric. [`DegradeSpec`]
//! selects a deterministic set of spine (T1↔T2) link pairs to withdraw,
//! which the fault layer then marks administratively down: routing flows
//! around them (no drops), leaving an asymmetric fabric for the scenario
//! matrix to stress.

use crate::clos::{ClosTopology, LinkKind};
use crate::ids::LinkId;
use serde::{Deserialize, Serialize};

/// A declarative fabric degradation: withdraw a fraction of spine link
/// pairs (both directions of a T1↔T2 adjacency).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradeSpec {
    /// Fraction of T1↔T2 pairs withdrawn, in `[0, 1)`. Selection keeps at
    /// least one live T2 uplink per T1 so the degraded fabric stays
    /// connected (degradation reroutes; it must not blackhole).
    pub frac_spine_pairs_down: f64,
}

impl DegradeSpec {
    /// A spec withdrawing `frac` of the spine pairs.
    pub fn new(frac: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&frac),
            "degradation fraction must be in [0, 1)"
        );
        Self {
            frac_spine_pairs_down: frac,
        }
    }

    /// The withdrawn links: both directions of the selected T1↔T2 pairs.
    ///
    /// Selection is a pure function of the topology and `salt` (pairs are
    /// ranked by a SplitMix hash of their up-link id), so the same spec
    /// degrades the same fabric identically on any thread or machine.
    /// Two guards keep degradation a pure reroute (never a blackhole):
    /// a pair is skipped when withdrawing it would leave its T1 with no
    /// live T2 uplink, *or* its T2 with no live downlink into the T1's
    /// pod (a flow already at that T2 bound for that pod would have
    /// nowhere to descend).
    pub fn withdrawn_links(&self, topo: &ClosTopology, salt: u64) -> Vec<LinkId> {
        let up_links: Vec<_> = topo
            .links()
            .iter()
            .filter(|l| l.kind == LinkKind::T1ToT2)
            .collect();
        if up_links.is_empty() || self.frac_spine_pairs_down <= 0.0 {
            return Vec::new();
        }
        let target = (up_links.len() as f64 * self.frac_spine_pairs_down).floor() as usize;

        // Rank pairs by hash so the selection is scattered, not clustered
        // on low link ids.
        let mut ranked: Vec<_> = up_links.iter().map(|l| (mix(salt, l.id.0), *l)).collect();
        ranked.sort_by_key(|(h, l)| (*h, l.id));

        // Connectivity bookkeeping: live T2-uplinks per T1 node, and live
        // per-pod downlinks per T2 node.
        let pod_of = |t1: crate::ids::Node| -> u16 {
            match t1 {
                crate::ids::Node::Switch(s) => match topo.switch_kind(s) {
                    crate::ids::SwitchKind::T1 { pod, .. } => pod,
                    other => unreachable!("spine link endpoint is a T1, got {other:?}"),
                },
                crate::ids::Node::Host(_) => unreachable!("spine links join switches"),
            }
        };
        let mut live_uplinks = std::collections::HashMap::new();
        let mut live_downlinks = std::collections::HashMap::new();
        for l in &up_links {
            *live_uplinks.entry(l.from).or_insert(0u32) += 1;
            *live_downlinks.entry((l.to, pod_of(l.from))).or_insert(0u32) += 1;
        }

        let mut withdrawn = Vec::new();
        for (_, link) in ranked {
            if withdrawn.len() / 2 >= target {
                break;
            }
            let pod = pod_of(link.from);
            if live_uplinks[&link.from] <= 1 {
                continue; // would disconnect this T1 from the spine
            }
            if live_downlinks[&(link.to, pod)] <= 1 {
                continue; // would strand this T2's traffic toward the pod
            }
            *live_uplinks.get_mut(&link.from).expect("counted above") -= 1;
            *live_downlinks
                .get_mut(&(link.to, pod))
                .expect("counted above") -= 1;
            withdrawn.push(link.id);
            let reverse = topo
                .link_between(link.to, link.from)
                .expect("spine links are paired by construction");
            withdrawn.push(reverse);
        }
        withdrawn.sort();
        withdrawn
    }
}

/// SplitMix64 over `(salt, id)` — the ranking hash.
fn mix(salt: u64, id: u32) -> u64 {
    crate::splitmix64(salt ^ u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ClosParams;

    fn topo() -> ClosTopology {
        ClosTopology::new(ClosParams::tiny(), 9).unwrap()
    }

    #[test]
    fn selection_is_deterministic_and_paired() {
        let t = topo();
        let spec = DegradeSpec::new(0.25);
        let a = spec.withdrawn_links(&t, 7);
        let b = spec.withdrawn_links(&t, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_eq!(a.len() % 2, 0, "withdrawals come in direction pairs");
        for id in &a {
            assert!(t.link(*id).kind.is_level2());
        }
    }

    #[test]
    fn different_salts_differ() {
        let t = topo();
        let spec = DegradeSpec::new(0.25);
        assert_ne!(spec.withdrawn_links(&t, 1), spec.withdrawn_links(&t, 2));
    }

    #[test]
    fn degradation_never_blackholes_either_side() {
        let t = topo();
        // Aggressive degradation: connectivity still preserved on both
        // ends of every withdrawn pair.
        for salt in 0..8u64 {
            let spec = DegradeSpec::new(0.9);
            let down: std::collections::BTreeSet<_> =
                spec.withdrawn_links(&t, salt).into_iter().collect();
            assert!(!down.is_empty());

            // Every T1 keeps ≥ 1 live T2 uplink.
            let mut up = std::collections::HashMap::new();
            // Every T2 keeps ≥ 1 live downlink into every pod.
            let mut per_pod = std::collections::HashMap::new();
            for l in t.links() {
                if l.kind != LinkKind::T1ToT2 {
                    continue;
                }
                let pod = match l.from {
                    crate::ids::Node::Switch(s) => match t.switch_kind(s) {
                        crate::ids::SwitchKind::T1 { pod, .. } => pod,
                        _ => unreachable!(),
                    },
                    _ => unreachable!(),
                };
                let alive = u32::from(!down.contains(&l.id));
                *up.entry(l.from).or_insert(0u32) += alive;
                *per_pod.entry((l.to, pod)).or_insert(0u32) += alive;
            }
            assert!(up.values().all(|&n| n >= 1), "a T1 lost its whole spine");
            assert!(
                per_pod.values().all(|&n| n >= 1),
                "a T2 lost all downlinks into a pod (salt {salt})"
            );
        }
    }

    #[test]
    fn zero_fraction_withdraws_nothing() {
        let t = topo();
        assert!(DegradeSpec::new(0.0).withdrawn_links(&t, 5).is_empty());
    }

    #[test]
    fn single_tier_fabric_has_no_spine() {
        let t = ClosTopology::new(ClosParams::test_cluster(), 1).unwrap();
        assert!(DegradeSpec::new(0.5).withdrawn_links(&t, 5).is_empty());
    }

    #[test]
    fn oversubscription_shrinks_spine_only() {
        let p = ClosParams::paper_sim();
        let o = p.with_oversubscription(2);
        assert_eq!(o.n0, p.n0);
        assert_eq!(o.hosts_per_tor, p.hosts_per_tor);
        assert_eq!(o.n1, p.n1 / 2);
        assert_eq!(o.n2, p.n2 / 2);
        o.validate().unwrap();
        assert!(o.spine_pairs_per_pod() < p.spine_pairs_per_pod());
        // Degenerate factor never zeroes a layer.
        let tiny = ClosParams::tiny().with_oversubscription(100);
        assert_eq!(tiny.n1, 1);
        assert_eq!(tiny.n2, 1);
        tiny.validate().unwrap();
    }
}
