//! The paper's analytical bounds, as executable formulas.
//!
//! * **Theorem 1** — the traceroute rate `Ct` each host may use such that
//!   no switch generates ICMP faster than the operator cap `Tmax`:
//!
//!   ```text
//!   Ct ≤ Tmax / (n0·H) · min[ n1, n2·(n0·npod − 1) / (n0·(npod − 1)) ]
//!   ```
//!
//! * **Theorem 2/3** — the signal-to-noise condition under which 007 ranks
//!   all `k` bad links above all good links with probability `1 − ε`,
//!   where `ε ≤ 2·e^{−O(N)}` via the Chernoff–KL bounds in `vigil-stats`.
//!
//! The path-discovery agent uses [`theorem1_ct_bound`] to configure its
//! host-side rate limiter; the bench binaries use [`Theorem2`] to annotate
//! whether each experiment sits inside or outside the proven regime.

use crate::params::ClosParams;
use serde::{Deserialize, Serialize};
use vigil_stats::divergence::misranking_probability_bound;

/// Theorem 1: the per-host traceroute rate cap (traceroutes per second)
/// that keeps every switch's ICMP response rate at or below `tmax`
/// (responses per second).
///
/// With a single pod no flow uses level-2 links, so the level-2 term is
/// dropped and the bound is `Tmax·n1 / (n0·H)`.
pub fn theorem1_ct_bound(params: &ClosParams, tmax: f64) -> f64 {
    assert!(tmax >= 0.0, "Tmax must be non-negative");
    let n0 = f64::from(params.n0);
    let n1 = f64::from(params.n1);
    let n2 = f64::from(params.n2);
    let npod = f64::from(params.npod);
    let h = f64::from(params.hosts_per_tor);

    let level1_term = n1;
    let min_term = if params.npod > 1 {
        let level2_term = n2 * (n0 * npod - 1.0) / (n0 * (npod - 1.0));
        level1_term.min(level2_term)
    } else {
        level1_term
    };
    tmax / (n0 * h) * min_term
}

/// The largest `k` (number of simultaneous bad links) Theorem 2 covers:
/// `k < n2·(n0·npod − 1)/(n0·(npod − 1))`. Returns `None` for a single pod
/// (the theorem's combinatorics assume inter-pod traffic).
pub fn theorem2_k_max(params: &ClosParams) -> Option<f64> {
    if params.npod <= 1 {
        return None;
    }
    let n0 = f64::from(params.n0);
    let n2 = f64::from(params.n2);
    let npod = f64::from(params.npod);
    Some(n2 * (n0 * npod - 1.0) / (n0 * (npod - 1.0)))
}

/// Inputs for the Theorem 2/3 accuracy bound.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Theorem2 {
    /// Topology parameters.
    pub params: ClosParams,
    /// Number of simultaneously failed links (`k`).
    pub k: u32,
    /// Per-packet drop probability on bad links (`p_b`).
    pub p_bad: f64,
    /// Per-packet drop probability on good links (`p_g`, the noise).
    pub p_good: f64,
    /// Lower bound on packets per connection (`c_l` / `n_l`).
    pub c_lower: u32,
    /// Upper bound on packets per connection (`c_u` / `n_u`).
    pub c_upper: u32,
}

impl Theorem2 {
    /// The amplification factor `α` of eq. (2)/(8):
    /// `α = n0·(4n0 − k)·(npod − 1) / (n2·(n0·npod − 1) − n0·(npod − 1)·k)`.
    ///
    /// Returns `None` when undefined: single pod, or `k` at/above the
    /// theorem's limit (denominator ≤ 0).
    pub fn alpha(&self) -> Option<f64> {
        if self.params.npod <= 1 {
            return None;
        }
        let n0 = f64::from(self.params.n0);
        let n2 = f64::from(self.params.n2);
        let npod = f64::from(self.params.npod);
        let k = f64::from(self.k);
        let denom = n2 * (n0 * npod - 1.0) - n0 * (npod - 1.0) * k;
        if denom <= 0.0 {
            return None;
        }
        Some(n0 * (4.0 * n0 - k) * (npod - 1.0) / denom)
    }

    /// The noise ceiling of eq. (7): good-link drop rates up to
    /// `p_g ≤ (1 − (1 − p_b)^{c_l}) / (α·c_u)` are provably tolerated.
    pub fn noise_ceiling(&self) -> Option<f64> {
        let alpha = self.alpha()?;
        let r_bad_floor = 1.0 - (1.0 - self.p_bad).powi(self.c_lower as i32);
        Some(r_bad_floor / (alpha * f64::from(self.c_upper)))
    }

    /// True when the configured noise `p_good` is within the proven regime.
    pub fn holds(&self) -> Option<bool> {
        Some(self.p_good <= self.noise_ceiling()?)
    }

    /// Pod-count precondition of Theorem 3:
    /// `npod ≥ 1 + max[n0/n1, n2(n0−1)/(n0(n0−n2)), 1]` (with the middle
    /// term only meaningful when `n0 > n2`).
    pub fn pod_condition_holds(&self) -> bool {
        let n0 = f64::from(self.params.n0);
        let n1 = f64::from(self.params.n1);
        let n2 = f64::from(self.params.n2);
        let npod = f64::from(self.params.npod);
        let mut req: f64 = 1.0;
        req = req.max(n0 / n1);
        if n0 > n2 && n2 > 0.0 {
            req = req.max(n2 * (n0 - 1.0) / (n0 * (n0 - n2)));
        }
        npod >= 1.0 + req
    }

    /// Probability a connection through a bad link sees a retransmission,
    /// at the lower packet-count bound: `r_b ≥ 1 − (1 − p_b)^{c_l}`.
    pub fn r_bad_floor(&self) -> f64 {
        1.0 - (1.0 - self.p_bad).powi(self.c_lower as i32)
    }

    /// Probability a connection through a good link sees a retransmission,
    /// at the upper packet-count bound: `r_g ≤ 1 − (1 − p_g)^{c_u}`.
    pub fn r_good_ceiling(&self) -> f64 {
        1.0 - (1.0 - self.p_good).powi(self.c_upper as i32)
    }

    /// Lemma 2, eq. (10a): lower bound on the probability a bad link
    /// receives a vote from a uniformly random connection:
    /// `v_b ≥ r_b / (n0·n1·npod)`.
    pub fn v_bad_floor(&self) -> f64 {
        let p = &self.params;
        self.r_bad_floor() / (f64::from(p.n0) * f64::from(p.n1) * f64::from(p.npod))
    }

    /// Lemma 2, eq. (10b): upper bound on the probability a good link
    /// receives a vote:
    /// `v_g ≤ (n0(npod−1)/(n1·n2·npod·(n0·npod−1))) · [(4 − k/n0)·r_g + (k/n0)·r_b]`.
    pub fn v_good_ceiling(&self) -> Option<f64> {
        let p = &self.params;
        if p.npod <= 1 || p.n2 == 0 {
            return None;
        }
        let n0 = f64::from(p.n0);
        let n1 = f64::from(p.n1);
        let n2 = f64::from(p.n2);
        let npod = f64::from(p.npod);
        let k = f64::from(self.k);
        let geom = n0 * (npod - 1.0) / (n1 * n2 * npod * (n0 * npod - 1.0));
        Some(geom * ((4.0 - k / n0) * self.r_good_ceiling() + (k / n0) * self.r_bad_floor()))
    }

    /// Theorem 3's mis-ranking probability bound `ε ≤ 2·e^{−O(N)}` for `n`
    /// total connections. `None` when the bound's preconditions fail
    /// (single pod, or the vote-probability gap is non-positive so the
    /// theorem gives no guarantee).
    pub fn epsilon(&self, n_connections: u64) -> Option<f64> {
        let vg = self.v_good_ceiling()?;
        let vb = self.v_bad_floor();
        misranking_probability_bound(n_connections, vg, vb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> ClosParams {
        ClosParams::paper_sim()
    }

    #[test]
    fn theorem1_hand_computed() {
        // paper_sim: n0=20, n1=16, n2=20, npod=2, H=20, Tmax=100.
        // level2 term = 20·(40−1)/(20·1) = 39 ≥ n1=16 ⇒ min = 16.
        // Ct = 100/(20·20) · 16 = 4.0
        let ct = theorem1_ct_bound(&paper(), 100.0);
        assert!((ct - 4.0).abs() < 1e-12, "got {ct}");
    }

    #[test]
    fn theorem1_single_pod_uses_level1_term() {
        let p = ClosParams::test_cluster(); // n0=10, n1=4, H=5
        let ct = theorem1_ct_bound(&p, 100.0);
        assert!((ct - 100.0 / 50.0 * 4.0).abs() < 1e-12); // 8.0
    }

    #[test]
    fn theorem1_scales_linearly_in_tmax() {
        let p = paper();
        let a = theorem1_ct_bound(&p, 100.0);
        let b = theorem1_ct_bound(&p, 200.0);
        assert!((b - 2.0 * a).abs() < 1e-12);
    }

    #[test]
    fn theorem1_larger_racks_lower_bound() {
        let p = paper();
        let bigger = ClosParams {
            hosts_per_tor: 40,
            ..p
        };
        assert!(theorem1_ct_bound(&bigger, 100.0) < theorem1_ct_bound(&p, 100.0));
    }

    #[test]
    fn k_max_hand_computed() {
        // n2(n0·npod − 1)/(n0(npod−1)) = 20·39/20 = 39
        assert_eq!(theorem2_k_max(&paper()), Some(39.0));
        assert_eq!(theorem2_k_max(&ClosParams::test_cluster()), None);
    }

    fn thm(k: u32, pb: f64, pg: f64) -> Theorem2 {
        Theorem2 {
            params: paper(),
            k,
            p_bad: pb,
            p_good: pg,
            c_lower: 50,
            c_upper: 100,
        }
    }

    #[test]
    fn alpha_hand_computed() {
        // k=1: α = 20·(80−1)·1 / (20·39 − 20·1) = 1580/760
        let a = thm(1, 0.01, 1e-7).alpha().unwrap();
        assert!((a - 1580.0 / 760.0).abs() < 1e-9, "got {a}");
    }

    #[test]
    fn alpha_undefined_at_k_max() {
        assert!(thm(39, 0.01, 1e-7).alpha().is_none());
        assert!(thm(45, 0.01, 1e-7).alpha().is_none());
    }

    #[test]
    fn noise_ceiling_positive_and_scales_with_pb() {
        let lo = thm(1, 0.0005, 0.0).noise_ceiling().unwrap();
        let hi = thm(1, 0.01, 0.0).noise_ceiling().unwrap();
        assert!(lo > 0.0);
        assert!(hi > lo);
    }

    #[test]
    fn paper_example_magnitude() {
        // §5.2: with pb ≥ 0.05 % the paper's datacenter tolerates good-link
        // rates up to ~1.8e-6. α shrinks with topology size, so our much
        // smaller default topology tolerates more noise; the ceiling must
        // still be a small number well above typical noise (≤ 1e-6) and
        // well below failure rates (≥ 1e-4 … 1e-2).
        let ceil = thm(1, 0.0005, 0.0).noise_ceiling().unwrap();
        assert!(ceil > 1e-6 && ceil < 1e-3, "ceiling {ceil} out of range");
    }

    #[test]
    fn holds_respects_ceiling() {
        let t = thm(1, 0.001, 1e-9);
        assert_eq!(t.holds(), Some(true));
        let noisy = thm(1, 0.001, 0.01);
        assert_eq!(noisy.holds(), Some(false));
    }

    #[test]
    fn retransmission_probabilities_monotone() {
        let t = thm(1, 0.001, 1e-6);
        assert!(t.r_bad_floor() > 0.0 && t.r_bad_floor() < 1.0);
        assert!(t.r_good_ceiling() > 0.0 && t.r_good_ceiling() < 1.0);
        let heavier = thm(1, 0.01, 1e-6);
        assert!(heavier.r_bad_floor() > t.r_bad_floor());
    }

    #[test]
    fn vote_probability_gap_in_regime() {
        // Inside the proven regime the bad-link vote floor must exceed the
        // good-link vote ceiling — that is the content of the theorem.
        let t = thm(1, 0.005, 1e-8);
        assert!(t.v_bad_floor() > t.v_good_ceiling().unwrap());
    }

    #[test]
    fn epsilon_decays_with_n() {
        let t = thm(1, 0.005, 1e-8);
        let e1 = t.epsilon(10_000).unwrap();
        let e2 = t.epsilon(100_000).unwrap();
        let e3 = t.epsilon(10_000_000).unwrap();
        assert!(e2 <= e1);
        assert!(e3 <= e2);
        // Datacenter-scale N (10⁷ connections/epoch) drives ε to ~0.
        assert!(e3 < 1e-3, "ε(10⁷) = {e3} should be tiny");
    }

    #[test]
    fn epsilon_none_outside_regime() {
        // Noise so high the vote gap inverts: no guarantee.
        let t = thm(1, 0.0001, 0.01);
        assert!(t.epsilon(10_000).is_none());
    }

    #[test]
    fn pod_condition() {
        // paper_sim: npod=2, need 1 + max[20/16, …] = 2.25 ⇒ fails (the
        // paper's own simulations run outside the sufficient conditions,
        // §6: "This shows these conditions are not necessary").
        assert!(!thm(1, 0.001, 0.0).pod_condition_holds());
        let big = Theorem2 {
            params: ClosParams { npod: 4, ..paper() },
            k: 1,
            p_bad: 0.001,
            p_good: 0.0,
            c_lower: 50,
            c_upper: 100,
        };
        assert!(big.pod_condition_holds());
    }
}
