//! Paths and routing errors.

use crate::ids::{LinkId, Node};
use serde::{Deserialize, Serialize};

/// A routed path: the node sequence `host, ToR, …, host` and the
/// directional links between consecutive nodes (`links.len() ==
/// nodes.len() − 1`).
///
/// The paper's vote weight `1/h` uses `h = hop_count()`, the number of
/// links on the path — host↔ToR links included, since those are votable
/// and detectable failures (§8.3 finds 48 % of problems there).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    /// Traversed nodes in order, starting and ending at hosts (a complete
    /// path) or ending wherever routing stopped (a partial path from a
    /// blackhole or a TTL-limited probe).
    pub nodes: Vec<Node>,
    /// Directional links between consecutive nodes.
    pub links: Vec<LinkId>,
}

impl Path {
    /// Creates a path, checking the node/link length invariant.
    pub fn new(nodes: Vec<Node>, links: Vec<LinkId>) -> Self {
        assert_eq!(
            nodes.len(),
            links.len() + 1,
            "a path with L links visits exactly L+1 nodes"
        );
        Self { nodes, links }
    }

    /// Number of links (`h` in the paper's `1/h` vote weight).
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// True when the path traverses `link`.
    pub fn contains_link(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// The path truncated to its first `n` links — what a TTL-`n` probe
    /// observes.
    pub fn prefix(&self, n: usize) -> Path {
        let n = n.min(self.links.len());
        Path {
            nodes: self.nodes[..=n].to_vec(),
            links: self.links[..n].to_vec(),
        }
    }
}

/// Reusable routing buffers for the allocation-free
/// [`route_filtered_into`](crate::ClosTopology::route_filtered_into)
/// variant: the routed node/link sequences are written here instead of
/// freshly allocated per call. One scratch serves any number of
/// consecutive routing calls; each call clears and refills it.
#[derive(Debug, Clone, Default)]
pub struct RouteScratch {
    /// Traversed nodes of the last routed path (or blackholed prefix).
    pub nodes: Vec<Node>,
    /// Directional links of the last routed path (or blackholed prefix).
    pub links: Vec<LinkId>,
}

impl RouteScratch {
    /// An empty scratch (buffers grow to a path's length on first use
    /// and are reused afterwards). Materialize an owned [`Path`] via
    /// [`crate::PathArena::to_path`] after interning, or by moving the
    /// buffers — the scratch itself stays a plain buffer pair.
    pub fn new() -> Self {
        Self::default()
    }
}

/// How an allocation-free routing call ended; the scratch holds the
/// node/link sequences either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routed {
    /// The path reaches the destination host.
    Complete,
    /// Every candidate next hop at some switch was excluded; the scratch
    /// holds the partial path up to the switch with no live next hop.
    Blackholed,
}

/// Routing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Source and destination are the same host; there is no network path.
    SameHost,
    /// Every candidate next hop at some switch was excluded (administrative
    /// down / withdrawn); the packet is blackholed after `partial`.
    Blackhole {
        /// The path up to and including the switch with no live next hop.
        partial: Path,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::SameHost => write!(f, "source and destination host are identical"),
            RouteError::Blackhole { partial } => {
                write!(f, "blackholed after {} hops", partial.hop_count())
            }
        }
    }
}

impl std::error::Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{HostId, SwitchId};

    fn sample() -> Path {
        Path::new(
            vec![
                Node::Host(HostId(0)),
                Node::Switch(SwitchId(0)),
                Node::Switch(SwitchId(1)),
                Node::Host(HostId(5)),
            ],
            vec![LinkId(10), LinkId(11), LinkId(12)],
        )
    }

    #[test]
    fn hop_count_is_link_count() {
        assert_eq!(sample().hop_count(), 3);
    }

    #[test]
    fn contains_link_works() {
        let p = sample();
        assert!(p.contains_link(LinkId(11)));
        assert!(!p.contains_link(LinkId(99)));
    }

    #[test]
    fn prefix_truncates() {
        let p = sample();
        let q = p.prefix(2);
        assert_eq!(q.hop_count(), 2);
        assert_eq!(q.nodes.len(), 3);
        assert_eq!(q.links, vec![LinkId(10), LinkId(11)]);
        // prefix longer than the path is the path itself
        assert_eq!(p.prefix(10), p);
    }

    #[test]
    #[should_panic(expected = "L+1 nodes")]
    fn invariant_enforced() {
        let _ = Path::new(vec![Node::Host(HostId(0))], vec![LinkId(0)]);
    }
}
