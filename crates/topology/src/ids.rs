//! Identifier types for topology entities.
//!
//! Plain newtype indices — cheap to copy, hash, and store in dense tables.
//! All of them are stable for the lifetime of a [`crate::ClosTopology`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a host (server) in the topology, dense in `0..num_hosts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

/// Index of a switch in the topology, dense in `0..num_switches`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SwitchId(pub u32);

/// Index of a directional link, dense in `0..num_links`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The raw index, convenient for dense per-link arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What tier a switch sits in, and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchKind {
    /// Top-of-rack switch `idx` in pod `pod`.
    Tor {
        /// Pod index.
        pod: u16,
        /// ToR index within the pod.
        idx: u16,
    },
    /// Tier-1 switch `idx` in pod `pod`.
    T1 {
        /// Pod index.
        pod: u16,
        /// T1 index within the pod.
        idx: u16,
    },
    /// Global tier-2 switch `idx` (tier-2 switches belong to no pod).
    T2 {
        /// T2 index.
        idx: u16,
    },
}

impl SwitchKind {
    /// The pod this switch belongs to, if any (T2 switches are global).
    pub fn pod(&self) -> Option<u16> {
        match self {
            SwitchKind::Tor { pod, .. } | SwitchKind::T1 { pod, .. } => Some(*pod),
            SwitchKind::T2 { .. } => None,
        }
    }

    /// Canonical operator-facing name, e.g. `pod0-tor3`, `pod1-t1-2`,
    /// `t2-7` — the strings the alias map resolves to.
    pub fn name(&self) -> String {
        match self {
            SwitchKind::Tor { pod, idx } => format!("pod{pod}-tor{idx}"),
            SwitchKind::T1 { pod, idx } => format!("pod{pod}-t1-{idx}"),
            SwitchKind::T2 { idx } => format!("t2-{idx}"),
        }
    }
}

impl fmt::Display for SwitchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A generic endpoint: host or switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Node {
    /// A server.
    Host(HostId),
    /// A switch.
    Switch(SwitchId),
}

impl Node {
    /// The switch id, if this node is a switch.
    pub fn switch(self) -> Option<SwitchId> {
        match self {
            Node::Switch(s) => Some(s),
            Node::Host(_) => None,
        }
    }

    /// The host id, if this node is a host.
    pub fn host(self) -> Option<HostId> {
        match self {
            Node::Host(h) => Some(h),
            Node::Switch(_) => None,
        }
    }
}

impl From<HostId> for Node {
    fn from(h: HostId) -> Self {
        Node::Host(h)
    }
}

impl From<SwitchId> for Node {
    fn from(s: SwitchId) -> Self {
        Node::Switch(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_kind_names() {
        assert_eq!(SwitchKind::Tor { pod: 0, idx: 3 }.name(), "pod0-tor3");
        assert_eq!(SwitchKind::T1 { pod: 1, idx: 2 }.name(), "pod1-t1-2");
        assert_eq!(SwitchKind::T2 { idx: 7 }.name(), "t2-7");
    }

    #[test]
    fn switch_kind_pods() {
        assert_eq!(SwitchKind::Tor { pod: 4, idx: 0 }.pod(), Some(4));
        assert_eq!(SwitchKind::T1 { pod: 2, idx: 0 }.pod(), Some(2));
        assert_eq!(SwitchKind::T2 { idx: 0 }.pod(), None);
    }

    #[test]
    fn node_projections() {
        let h = Node::Host(HostId(3));
        let s = Node::Switch(SwitchId(5));
        assert_eq!(h.host(), Some(HostId(3)));
        assert_eq!(h.switch(), None);
        assert_eq!(s.switch(), Some(SwitchId(5)));
        assert_eq!(s.host(), None);
    }

    #[test]
    fn link_id_index() {
        assert_eq!(LinkId(9).index(), 9);
    }
}
