//! Identifier types for topology entities.
//!
//! Plain newtype indices — cheap to copy, hash, and store in dense tables.
//! All of them are stable for the lifetime of a [`crate::ClosTopology`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a host (server) in the topology, dense in `0..num_hosts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

/// Index of a switch in the topology, dense in `0..num_switches`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SwitchId(pub u32);

/// Index of a directional link, dense in `0..num_links`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The raw index, convenient for dense per-link arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dense bitset over link ids — the allocation-light replacement for
/// `HashSet<LinkId>` wherever membership is tested against the topology's
/// `0..num_links` id space (Algorithm 1's exclusion set, the noise
/// classifier's detected set). One `u64` word covers 64 links, so even
/// the paper's 4160-link fabric fits in 65 words.
#[derive(Debug, Clone, Default)]
pub struct LinkSet {
    words: Vec<u64>,
}

/// Equality is by membership, not capacity: a set sized for 130 links
/// and a grown-on-demand set holding the same ids compare equal even
/// though their word vectors differ in length (missing words are zero).
impl PartialEq for LinkSet {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        short == &long[..short.len()] && long[short.len()..].iter().all(|w| *w == 0)
    }
}

impl Eq for LinkSet {}

impl LinkSet {
    /// An empty set sized for `num_links` links.
    pub fn new(num_links: usize) -> Self {
        Self {
            words: vec![0; num_links.div_ceil(64)],
        }
    }

    /// Inserts `link`; returns true when it was newly inserted.
    pub fn insert(&mut self, link: LinkId) -> bool {
        let (w, b) = (link.index() / 64, link.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// True when `link` is in the set.
    pub fn contains(&self, link: LinkId) -> bool {
        self.words
            .get(link.index() / 64)
            .is_some_and(|w| w & (1 << (link.index() % 64)) != 0)
    }

    /// Removes every element, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of links in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no link is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates the members in ascending link-id order.
    pub fn iter(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1 << b) != 0)
                .map(move |b| LinkId((w * 64 + b) as u32))
        })
    }
}

impl FromIterator<LinkId> for LinkSet {
    fn from_iter<I: IntoIterator<Item = LinkId>>(iter: I) -> Self {
        let mut s = LinkSet::default();
        for l in iter {
            s.insert(l);
        }
        s
    }
}

/// What tier a switch sits in, and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchKind {
    /// Top-of-rack switch `idx` in pod `pod`.
    Tor {
        /// Pod index.
        pod: u16,
        /// ToR index within the pod.
        idx: u16,
    },
    /// Tier-1 switch `idx` in pod `pod`.
    T1 {
        /// Pod index.
        pod: u16,
        /// T1 index within the pod.
        idx: u16,
    },
    /// Global tier-2 switch `idx` (tier-2 switches belong to no pod).
    T2 {
        /// T2 index.
        idx: u16,
    },
}

impl SwitchKind {
    /// The pod this switch belongs to, if any (T2 switches are global).
    pub fn pod(&self) -> Option<u16> {
        match self {
            SwitchKind::Tor { pod, .. } | SwitchKind::T1 { pod, .. } => Some(*pod),
            SwitchKind::T2 { .. } => None,
        }
    }

    /// Canonical operator-facing name, e.g. `pod0-tor3`, `pod1-t1-2`,
    /// `t2-7` — the strings the alias map resolves to.
    pub fn name(&self) -> String {
        match self {
            SwitchKind::Tor { pod, idx } => format!("pod{pod}-tor{idx}"),
            SwitchKind::T1 { pod, idx } => format!("pod{pod}-t1-{idx}"),
            SwitchKind::T2 { idx } => format!("t2-{idx}"),
        }
    }
}

impl fmt::Display for SwitchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A generic endpoint: host or switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Node {
    /// A server.
    Host(HostId),
    /// A switch.
    Switch(SwitchId),
}

impl Node {
    /// The switch id, if this node is a switch.
    pub fn switch(self) -> Option<SwitchId> {
        match self {
            Node::Switch(s) => Some(s),
            Node::Host(_) => None,
        }
    }

    /// The host id, if this node is a host.
    pub fn host(self) -> Option<HostId> {
        match self {
            Node::Host(h) => Some(h),
            Node::Switch(_) => None,
        }
    }
}

impl From<HostId> for Node {
    fn from(h: HostId) -> Self {
        Node::Host(h)
    }
}

impl From<SwitchId> for Node {
    fn from(s: SwitchId) -> Self {
        Node::Switch(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_kind_names() {
        assert_eq!(SwitchKind::Tor { pod: 0, idx: 3 }.name(), "pod0-tor3");
        assert_eq!(SwitchKind::T1 { pod: 1, idx: 2 }.name(), "pod1-t1-2");
        assert_eq!(SwitchKind::T2 { idx: 7 }.name(), "t2-7");
    }

    #[test]
    fn switch_kind_pods() {
        assert_eq!(SwitchKind::Tor { pod: 4, idx: 0 }.pod(), Some(4));
        assert_eq!(SwitchKind::T1 { pod: 2, idx: 0 }.pod(), Some(2));
        assert_eq!(SwitchKind::T2 { idx: 0 }.pod(), None);
    }

    #[test]
    fn node_projections() {
        let h = Node::Host(HostId(3));
        let s = Node::Switch(SwitchId(5));
        assert_eq!(h.host(), Some(HostId(3)));
        assert_eq!(h.switch(), None);
        assert_eq!(s.switch(), Some(SwitchId(5)));
        assert_eq!(s.host(), None);
    }

    #[test]
    fn link_id_index() {
        assert_eq!(LinkId(9).index(), 9);
    }

    #[test]
    fn link_set_basics() {
        let mut s = LinkSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(LinkId(0)));
        assert!(s.insert(LinkId(63)));
        assert!(s.insert(LinkId(64)));
        assert!(s.insert(LinkId(129)));
        assert!(!s.insert(LinkId(64)), "double insert reports not-fresh");
        assert_eq!(s.len(), 4);
        assert!(s.contains(LinkId(129)));
        assert!(!s.contains(LinkId(1)));
        assert!(!s.contains(LinkId(4096)), "out of range is absent");
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(LinkId(0)));
    }

    #[test]
    fn link_set_grows_on_demand() {
        let mut s = LinkSet::default();
        s.insert(LinkId(200));
        assert!(s.contains(LinkId(200)));
        assert_eq!(s.len(), 1);
        let from_iter: LinkSet = [LinkId(1), LinkId(1), LinkId(70)].into_iter().collect();
        assert_eq!(from_iter.len(), 2);
    }

    #[test]
    fn link_set_equality_ignores_capacity() {
        let mut sized = LinkSet::new(130);
        sized.insert(LinkId(5));
        let grown: LinkSet = [LinkId(5)].into_iter().collect();
        assert_eq!(sized, grown, "same members, different word counts");
        assert_eq!(grown, sized, "symmetry");
        assert_eq!(LinkSet::new(130), LinkSet::default(), "both empty");
        let mut other = LinkSet::new(130);
        other.insert(LinkId(6));
        assert_ne!(sized, other);
        let mut tail = LinkSet::default();
        tail.insert(LinkId(128));
        assert_ne!(grown, tail, "member beyond the short set's words");
    }
}
