//! Epoch-compiled routing: the fault-keyed [`RouteTable`].
//!
//! Within one epoch the administrative down-set is fixed, so the live
//! ECMP candidate set at every switch — and therefore the whole routing
//! *structure* — is fixed too. [`ClosTopology::route_filtered_into`]
//! nevertheless re-walks the Clos cascade per flow: a `HashMap` lookup
//! per hop plus two filter scans per ECMP stage. [`RouteTable::compile`]
//! hoists all of that to epoch-open time: it enumerates each stage's
//! surviving candidates once, keyed by the down-link set, and
//! [`RouteTable::lookup`] reduces a per-flow route to at most three
//! tuple-hash selections over precompiled live lists plus a few array
//! probes. The ECMP seeds are read *live* from the topology at lookup
//! time, so [`ClosTopology::reseed_switch`] needs no invalidation.
//!
//! The compiled plan exploits the constructor's deterministic link
//! layout (host pairs first, then level-1 pairs, then level-2 pairs,
//! each `up` immediately followed by its `down` twin), so every link id
//! is plain arithmetic — no `link_between` map probe survives on the
//! per-flow path. `compile` cross-checks that arithmetic against the
//! authoritative link tables in debug builds.
//!
//! Routing consumes no RNG draws, so a driver swapping the walk for a
//! table lookup is byte-identical by construction; the equivalence
//! (including blackhole verdicts and partial-path shapes) is
//! property-tested against `route_filtered_into` in
//! `tests/route_table.rs`.

use crate::clos::ClosTopology;
use crate::ecmp;
use crate::ids::{HostId, LinkId, LinkSet, Node, SwitchId};
use crate::params::ClosParams;
use crate::route::{RouteError, RouteScratch, Routed};
use vigil_packet::FiveTuple;

/// Where a blackholed route truncates (or that it did not).
const TAG_COMPLETE: u8 = 0;
/// Host uplink withdrawn: partial path is the bare source host.
const TAG_AT_HOST: u8 = 1;
/// No live next hop at the source ToR (same-ToR downlink dead, or every
/// uplink T1 withdrawn): partial ends at the source ToR.
const TAG_AT_SRC_TOR: u8 = 2;
/// No live next hop at the ascended T1 (intra-pod downlink dead, or
/// every T2 withdrawn): partial ends at the up T1.
const TAG_AT_UP_T1: u8 = 3;
/// Every destination-pod T1 withdrawn at the chosen T2.
const TAG_AT_T2: u8 = 4;
/// The chosen descent T1's link to the destination ToR is dead.
const TAG_AT_DOWN_T1: u8 = 5;
/// The destination ToR's downlink to the destination host is dead.
const TAG_AT_DST_TOR: u8 = 6;

/// Sentinel for an ECMP stage the route never reached.
const NO_CHOICE: u16 = u16::MAX;

/// Compressed sparse rows of live ECMP candidates: row `r` holds the
/// candidate indices that survived the down-set, in ascending candidate
/// order — exactly the order `route_filtered_into`'s filtered `nth`
/// scan enumerates, so `row[pick]` reproduces its choice bit for bit.
#[derive(Debug, Clone, Default)]
struct Csr {
    starts: Vec<u32>,
    items: Vec<u16>,
}

impl Csr {
    fn build(rows: usize, cands: usize, mut live: impl FnMut(usize, usize) -> bool) -> Self {
        let mut starts = Vec::with_capacity(rows + 1);
        let mut items = Vec::new();
        starts.push(0u32);
        for r in 0..rows {
            for c in 0..cands {
                if live(r, c) {
                    items.push(c as u16);
                }
            }
            starts.push(items.len() as u32);
        }
        Self { starts, items }
    }

    fn row(&self, r: usize) -> &[u16] {
        &self.items[self.starts[r] as usize..self.starts[r + 1] as usize]
    }
}

/// The outcome of one compiled route lookup: the verdict plus the packed
/// stage choices, enough to (a) key a path cache without hashing link
/// sequences and (b) emit the exact node/link sequences on a cache miss
/// via [`RouteTable::emit_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    src: HostId,
    dst: HostId,
    tag: u8,
    up_t1: u16,
    t2: u16,
    down_t1: u16,
}

impl RouteDecision {
    /// Whether the route completed or blackholed — mirrors what
    /// [`ClosTopology::route_filtered_into`] returns for the same flow.
    pub fn routed(&self) -> Routed {
        if self.tag == TAG_COMPLETE {
            Routed::Complete
        } else {
            Routed::Blackholed
        }
    }

    /// A packed identity unique per distinct emitted path (for one
    /// compiled table): endpoints, truncation tag, and the ECMP choices.
    /// Two flows with equal keys route over byte-identical paths, so the
    /// key indexes a `PathId` cache without ever hashing a link slice.
    pub fn cache_key(&self) -> u128 {
        u128::from(self.src.0)
            | (u128::from(self.dst.0) << 32)
            | (u128::from(self.tag) << 64)
            | (u128::from(self.up_t1) << 72)
            | (u128::from(self.t2) << 88)
            | (u128::from(self.down_t1) << 104)
    }
}

/// A routing plan compiled against one `(params, down-set)` pair.
///
/// Compile once per epoch (or reuse across epochs whose down-set is
/// unchanged — flap timelines never change it, maintenance changes it
/// once); then each flow costs at most three [`ecmp::select`] calls over
/// the precompiled live lists. See the module docs for the full design.
#[derive(Debug, Clone)]
pub struct RouteTable {
    params: ClosParams,
    down: LinkSet,
    fingerprint: u64,
    /// Host uplink (`HostToTor`) liveness, indexed by host id.
    host_up_live: Vec<bool>,
    /// ToR→host downlink (`TorToHost`) liveness, indexed by host id.
    host_down_live: Vec<bool>,
    /// Live uplink T1 indices per ToR (row = dense ToR id).
    tor_up: Csr,
    /// Live uplink T2 indices per T1 (row = `pod·n1 + t1`).
    t1_up: Csr,
    /// Live descent T1 indices per (T2, destination pod)
    /// (row = `t2·npod + pod`).
    t2_down: Csr,
    /// `T1ToTor` downlink liveness, indexed by `(pod·n1 + t1)·n0 + tor`.
    t1_down_live: Vec<bool>,
}

impl RouteTable {
    /// Compiles the routing plan for `topo` under the given down-set.
    /// Cost is `O(num_links)`; amortized over an epoch's flows it is
    /// noise.
    pub fn compile(topo: &ClosTopology, down: &LinkSet) -> Self {
        let params = *topo.params();
        let npod = u32::from(params.npod);
        let n0 = u32::from(params.n0);
        let n1 = u32::from(params.n1);
        let n2 = u32::from(params.n2);
        let h = u32::from(params.hosts_per_tor);
        let num_hosts = npod * n0 * h;
        let base1 = 2 * num_hosts;
        let base2 = base1 + 2 * npod * n0 * n1;
        debug_assert!(verify_link_arithmetic(topo), "link-id arithmetic drifted");

        let live = |id: u32| !down.contains(LinkId(id));
        let host_up_live = (0..num_hosts).map(|i| live(2 * i)).collect();
        let host_down_live = (0..num_hosts).map(|i| live(2 * i + 1)).collect();
        let tor_up = Csr::build((npod * n0) as usize, n1 as usize, |tor, t1| {
            live(base1 + 2 * (tor as u32 * n1 + t1 as u32))
        });
        let t1_up = Csr::build((npod * n1) as usize, n2 as usize, |t1_row, t2| {
            live(base2 + 2 * (t1_row as u32 * n2 + t2 as u32))
        });
        let t2_down = Csr::build((n2 * npod) as usize, n1 as usize, |row, t1| {
            let (t2, pod) = (row as u32 / npod, row as u32 % npod);
            live(base2 + 2 * ((pod * n1 + t1 as u32) * n2 + t2) + 1)
        });
        let mut t1_down_live = vec![false; (npod * n1 * n0) as usize];
        for pod in 0..npod {
            for t1 in 0..n1 {
                for tor in 0..n0 {
                    let tor_dense = pod * n0 + tor;
                    t1_down_live[((pod * n1 + t1) * n0 + tor) as usize] =
                        live(base1 + 2 * (tor_dense * n1 + t1) + 1);
                }
            }
        }

        Self {
            params,
            fingerprint: Self::fingerprint_of(down),
            down: down.clone(),
            host_up_live,
            host_down_live,
            tor_up,
            t1_up,
            t2_down,
            t1_down_live,
        }
    }

    /// The order-insensitive fingerprint of a down-set — a cheap first
    /// filter before the exact [`LinkSet`] comparison when probing a
    /// cache of compiled tables.
    pub fn fingerprint_of(down: &LinkSet) -> u64 {
        down.iter().fold(0, |acc, l| {
            acc ^ crate::splitmix64(u64::from(l.0).wrapping_add(0x9e37_79b9_7f4a_7c15))
        })
    }

    /// This table's down-set fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The down-set this table was compiled against.
    pub fn down_set(&self) -> &LinkSet {
        &self.down
    }

    /// The parameters this table was compiled against.
    pub fn params(&self) -> &ClosParams {
        &self.params
    }

    /// True when this table is valid for `(params, down)` — the whole
    /// route structure is a function of exactly that pair (ECMP seeds
    /// are read live, so reseeds never invalidate a table).
    pub fn matches(&self, params: &ClosParams, down: &LinkSet) -> bool {
        self.params == *params && self.down == *down
    }

    /// Routes one flow through the compiled plan. Byte-equivalent to
    /// [`ClosTopology::route_filtered_into`] with the compiled down-set
    /// as the exclusion predicate: same completion/blackhole verdict,
    /// and [`Self::emit_into`] reproduces the identical node/link
    /// sequences. `topo` must have the parameters this table was
    /// compiled for (only its live ECMP seeds are consulted).
    pub fn lookup(
        &self,
        topo: &ClosTopology,
        tuple: &FiveTuple,
        src: HostId,
        dst: HostId,
    ) -> Result<RouteDecision, RouteError> {
        if src == dst {
            return Err(RouteError::SameHost);
        }
        let n0 = u32::from(self.params.n0);
        let n1 = u32::from(self.params.n1);
        let npod = u32::from(self.params.npod);
        let h = u32::from(self.params.hosts_per_tor);
        let src_tor = src.0 / h;
        let dst_tor = dst.0 / h;

        let mut d = RouteDecision {
            src,
            dst,
            tag: TAG_COMPLETE,
            up_t1: NO_CHOICE,
            t2: NO_CHOICE,
            down_t1: NO_CHOICE,
        };
        if !self.host_up_live[src.0 as usize] {
            d.tag = TAG_AT_HOST;
            return Ok(d);
        }
        if src_tor == dst_tor {
            if !self.host_down_live[dst.0 as usize] {
                d.tag = TAG_AT_SRC_TOR;
            }
            return Ok(d);
        }

        let ups = self.tor_up.row(src_tor as usize);
        if ups.is_empty() {
            d.tag = TAG_AT_SRC_TOR;
            return Ok(d);
        }
        let pick = ecmp::select(topo.ecmp_seed(SwitchId(src_tor)), tuple, ups.len());
        let up = ups[pick];
        d.up_t1 = up;

        let src_pod = src_tor / n0;
        let dst_pod = dst_tor / n0;
        let dst_tor_local = dst_tor - dst_pod * n0;
        if src_pod == dst_pod {
            if !self.t1_down_live[((src_pod * n1 + u32::from(up)) * n0 + dst_tor_local) as usize] {
                d.tag = TAG_AT_UP_T1;
            } else if !self.host_down_live[dst.0 as usize] {
                d.tag = TAG_AT_DST_TOR;
            }
            return Ok(d);
        }

        let t1_row = src_pod * n1 + u32::from(up);
        let t2s = self.t1_up.row(t1_row as usize);
        if t2s.is_empty() {
            d.tag = TAG_AT_UP_T1;
            return Ok(d);
        }
        let pick = ecmp::select(
            topo.ecmp_seed(SwitchId(npod * n0 + t1_row)),
            tuple,
            t2s.len(),
        );
        let t2 = t2s[pick];
        d.t2 = t2;

        let downs = self.t2_down.row((u32::from(t2) * npod + dst_pod) as usize);
        if downs.is_empty() {
            d.tag = TAG_AT_T2;
            return Ok(d);
        }
        let t2_switch = SwitchId(npod * (n0 + n1) + u32::from(t2));
        let pick = ecmp::select(topo.ecmp_seed(t2_switch), tuple, downs.len());
        let down = downs[pick];
        d.down_t1 = down;

        if !self.t1_down_live[((dst_pod * n1 + u32::from(down)) * n0 + dst_tor_local) as usize] {
            d.tag = TAG_AT_DOWN_T1;
        } else if !self.host_down_live[dst.0 as usize] {
            d.tag = TAG_AT_DST_TOR;
        }
        Ok(d)
    }

    /// Writes the node/link sequences of a decision's (possibly partial)
    /// path into `out` — byte-identical to what `route_filtered_into`
    /// leaves in its scratch for the same flow. Pure id arithmetic; used
    /// only on a path-cache miss.
    pub fn emit_into(&self, d: &RouteDecision, out: &mut RouteScratch) {
        let npod = u32::from(self.params.npod);
        let n0 = u32::from(self.params.n0);
        let n1 = u32::from(self.params.n1);
        let n2 = u32::from(self.params.n2);
        let h = u32::from(self.params.hosts_per_tor);
        let num_hosts = npod * n0 * h;
        let base1 = 2 * num_hosts;
        let base2 = base1 + 2 * npod * n0 * n1;
        let src_tor = d.src.0 / h;
        let dst_tor = d.dst.0 / h;
        let src_pod = src_tor / n0;
        let dst_pod = dst_tor / n0;

        out.nodes.clear();
        out.links.clear();
        out.nodes.push(Node::Host(d.src));
        if d.tag == TAG_AT_HOST {
            return;
        }
        out.links.push(LinkId(2 * d.src.0));
        out.nodes.push(Node::Switch(SwitchId(src_tor)));
        if d.tag == TAG_AT_SRC_TOR {
            return;
        }
        if src_tor == dst_tor {
            out.links.push(LinkId(2 * d.dst.0 + 1));
            out.nodes.push(Node::Host(d.dst));
            return;
        }
        let up = u32::from(d.up_t1);
        out.links.push(LinkId(base1 + 2 * (src_tor * n1 + up)));
        out.nodes
            .push(Node::Switch(SwitchId(npod * n0 + src_pod * n1 + up)));
        if d.tag == TAG_AT_UP_T1 {
            return;
        }
        if src_pod == dst_pod {
            out.links.push(LinkId(base1 + 2 * (dst_tor * n1 + up) + 1));
            out.nodes.push(Node::Switch(SwitchId(dst_tor)));
            if d.tag == TAG_AT_DST_TOR {
                return;
            }
            out.links.push(LinkId(2 * d.dst.0 + 1));
            out.nodes.push(Node::Host(d.dst));
            return;
        }
        let t2 = u32::from(d.t2);
        out.links
            .push(LinkId(base2 + 2 * ((src_pod * n1 + up) * n2 + t2)));
        out.nodes
            .push(Node::Switch(SwitchId(npod * (n0 + n1) + t2)));
        if d.tag == TAG_AT_T2 {
            return;
        }
        let down = u32::from(d.down_t1);
        out.links
            .push(LinkId(base2 + 2 * ((dst_pod * n1 + down) * n2 + t2) + 1));
        out.nodes
            .push(Node::Switch(SwitchId(npod * n0 + dst_pod * n1 + down)));
        if d.tag == TAG_AT_DOWN_T1 {
            return;
        }
        out.links
            .push(LinkId(base1 + 2 * (dst_tor * n1 + down) + 1));
        out.nodes.push(Node::Switch(SwitchId(dst_tor)));
        if d.tag == TAG_AT_DST_TOR {
            return;
        }
        out.links.push(LinkId(2 * d.dst.0 + 1));
        out.nodes.push(Node::Host(d.dst));
    }
}

/// Debug-build cross-check: the arithmetic link-id layout `compile` and
/// `emit_into` assume must agree with the authoritative link tables.
fn verify_link_arithmetic(topo: &ClosTopology) -> bool {
    use crate::clos::LinkKind;
    let p = *topo.params();
    let (npod, n0, n1, n2, h) = (
        u32::from(p.npod),
        u32::from(p.n0),
        u32::from(p.n1),
        u32::from(p.n2),
        u32::from(p.hosts_per_tor),
    );
    let num_hosts = npod * n0 * h;
    let base1 = 2 * num_hosts;
    let base2 = base1 + 2 * npod * n0 * n1;
    topo.links().iter().all(|l| {
        let id = l.id.0;
        match l.kind {
            LinkKind::HostToTor | LinkKind::TorToHost => id < base1,
            LinkKind::TorToT1 | LinkKind::T1ToTor => (base1..base2).contains(&id),
            LinkKind::T1ToT2 | LinkKind::T2ToT1 => id >= base2,
        }
    }) && (0..num_hosts).all(|host| {
        let tor = Node::Switch(SwitchId(host / h));
        topo.link_between(Node::Host(HostId(host)), tor) == Some(LinkId(2 * host))
            && topo.link_between(tor, Node::Host(HostId(host))) == Some(LinkId(2 * host + 1))
    }) && (0..npod * n0).all(|tor| {
        (0..n1).all(|t1| {
            let a = Node::Switch(SwitchId(tor));
            let b = Node::Switch(SwitchId(npod * n0 + (tor / n0) * n1 + t1));
            let up = base1 + 2 * (tor * n1 + t1);
            topo.link_between(a, b) == Some(LinkId(up))
                && topo.link_between(b, a) == Some(LinkId(up + 1))
        })
    }) && (0..npod * n1).all(|t1_row| {
        (0..n2).all(|t2| {
            let a = Node::Switch(SwitchId(npod * n0 + t1_row));
            let b = Node::Switch(SwitchId(npod * (n0 + n1) + t2));
            let up = base2 + 2 * (t1_row * n2 + t2);
            topo.link_between(a, b) == Some(LinkId(up))
                && topo.link_between(b, a) == Some(LinkId(up + 1))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ClosParams;

    fn topo() -> ClosTopology {
        ClosTopology::new(ClosParams::tiny(), 42).unwrap()
    }

    fn tuple(sp: u16) -> FiveTuple {
        FiveTuple::tcp(
            "10.0.0.1".parse().unwrap(),
            sp,
            "10.1.3.4".parse().unwrap(),
            443,
        )
    }

    /// One decision's emission must equal the walk's scratch, across a
    /// spread of tuples and endpoint classes (the exhaustive random
    /// check lives in `tests/route_table.rs`).
    #[test]
    fn lookup_matches_walk_on_clean_fabric() {
        let t = topo();
        let down = LinkSet::new(t.num_links());
        let table = RouteTable::compile(&t, &down);
        let mut walk = RouteScratch::new();
        let mut fast = RouteScratch::new();
        for (src, dst) in [(0u32, 1u32), (0, 5), (0, 31), (9, 30), (17, 2)] {
            let (src, dst) = (HostId(src), HostId(dst));
            for sp in 0..32u16 {
                let ft = tuple(40_000 + sp);
                let verdict = t
                    .route_filtered_into(&ft, src, dst, &|_| false, &mut walk)
                    .unwrap();
                let d = table.lookup(&t, &ft, src, dst).unwrap();
                assert_eq!(d.routed(), verdict);
                table.emit_into(&d, &mut fast);
                assert_eq!(fast.nodes, walk.nodes);
                assert_eq!(fast.links, walk.links);
            }
        }
    }

    #[test]
    fn same_host_rejected() {
        let t = topo();
        let table = RouteTable::compile(&t, &LinkSet::new(t.num_links()));
        assert_eq!(
            table
                .lookup(&t, &tuple(1), HostId(3), HostId(3))
                .unwrap_err(),
            RouteError::SameHost
        );
    }

    #[test]
    fn matches_keys_on_params_and_down_set() {
        let t = topo();
        let mut down = LinkSet::new(t.num_links());
        let table = RouteTable::compile(&t, &down);
        assert!(table.matches(t.params(), &down));
        down.insert(LinkId(7));
        assert!(!table.matches(t.params(), &down));
        let other = RouteTable::compile(&t, &down);
        assert!(other.matches(t.params(), &down));
        assert_ne!(other.fingerprint(), table.fingerprint());
        assert!(!other.matches(&ClosParams::test_cluster(), &down));
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_membership_keyed() {
        let a: LinkSet = [LinkId(3), LinkId(90)].into_iter().collect();
        let b: LinkSet = [LinkId(90), LinkId(3)].into_iter().collect();
        assert_eq!(
            RouteTable::fingerprint_of(&a),
            RouteTable::fingerprint_of(&b)
        );
        assert_ne!(
            RouteTable::fingerprint_of(&a),
            RouteTable::fingerprint_of(&LinkSet::default())
        );
        // A set containing only link 0 must not fingerprint to empty.
        let zero: LinkSet = [LinkId(0)].into_iter().collect();
        assert_ne!(RouteTable::fingerprint_of(&zero), 0);
    }

    #[test]
    fn cache_keys_distinguish_truncation_points() {
        let t = topo();
        // Withdraw every uplink of host 0's ToR and host 1's downlink:
        // flows from host 0 blackhole at the ToR; flows to host 1 on the
        // same ToR blackhole there too, but with a different tag path.
        let mut down = LinkSet::new(t.num_links());
        down.insert(LinkId(0)); // host 0 uplink (2·host + 0)
        let table = RouteTable::compile(&t, &down);
        let d_host = table.lookup(&t, &tuple(9), HostId(0), HostId(9)).unwrap();
        assert_eq!(d_host.routed(), Routed::Blackholed);
        let d_ok = table.lookup(&t, &tuple(9), HostId(2), HostId(9)).unwrap();
        assert_eq!(d_ok.routed(), Routed::Complete);
        assert_ne!(d_host.cache_key(), d_ok.cache_key());
    }
}
