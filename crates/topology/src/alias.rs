//! Router alias resolution (paper §4.2, "Router aliasing").
//!
//! Traceroute replies arrive from switch *interface* addresses; in an
//! internet-scale measurement resolving interfaces to routers is a research
//! problem, but "this problem is easily solved in a datacenter, as we know
//! the topology, names, and IPs of all routers and interfaces. We can
//! simply map the IPs from the traceroutes to the switch names."
//!
//! [`AliasMap`] is that mapping. The [`crate::ClosTopology`] constructor
//! registers every switch's addresses (a loopback plus one address per
//! interface, as real switches have) so the path discovery agent can
//! resolve any ICMP source to a [`SwitchId`].

use crate::ids::SwitchId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Maps every known switch interface/loopback address to its switch.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AliasMap {
    by_ip: HashMap<Ipv4Addr, SwitchId>,
}

impl AliasMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one address for a switch.
    ///
    /// # Panics
    ///
    /// Panics if the address is already registered to a *different* switch —
    /// duplicate interface addressing is a topology construction bug.
    pub fn register(&mut self, ip: Ipv4Addr, switch: SwitchId) {
        if let Some(prev) = self.by_ip.insert(ip, switch) {
            assert_eq!(
                prev, switch,
                "address {ip} registered to two switches: {prev:?} and {switch:?}"
            );
        }
    }

    /// Resolves an address to its switch, if known.
    pub fn resolve(&self, ip: Ipv4Addr) -> Option<SwitchId> {
        self.by_ip.get(&ip).copied()
    }

    /// Number of registered addresses.
    pub fn len(&self) -> usize {
        self.by_ip.len()
    }

    /// True when no addresses are registered.
    pub fn is_empty(&self) -> bool {
        self.by_ip.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_resolve() {
        let mut m = AliasMap::new();
        let ip = Ipv4Addr::new(10, 220, 0, 3);
        m.register(ip, SwitchId(3));
        assert_eq!(m.resolve(ip), Some(SwitchId(3)));
        assert_eq!(m.resolve(Ipv4Addr::new(10, 220, 0, 4)), None);
    }

    #[test]
    fn re_registering_same_switch_is_idempotent() {
        let mut m = AliasMap::new();
        let ip = Ipv4Addr::new(10, 220, 0, 3);
        m.register(ip, SwitchId(3));
        m.register(ip, SwitchId(3));
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "registered to two switches")]
    fn conflicting_registration_panics() {
        let mut m = AliasMap::new();
        let ip = Ipv4Addr::new(10, 220, 0, 3);
        m.register(ip, SwitchId(3));
        m.register(ip, SwitchId(4));
    }

    #[test]
    fn multiple_aliases_same_switch() {
        // A switch has many interfaces; all resolve to the same identity.
        let mut m = AliasMap::new();
        m.register(Ipv4Addr::new(10, 220, 0, 3), SwitchId(3));
        m.register(Ipv4Addr::new(10, 230, 0, 3), SwitchId(3));
        assert_eq!(m.resolve(Ipv4Addr::new(10, 230, 0, 3)), Some(SwitchId(3)));
        assert_eq!(m.len(), 2);
    }
}
