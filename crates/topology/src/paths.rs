//! Path enumeration and diversity metrics.
//!
//! "The accuracy of 007 is tied to the degree of path diversity and that
//! multiple paths are available at each hop: the higher the degree of
//! path diversity, the better 007 performs." (§9.1). This module
//! enumerates the ECMP-reachable path set between host pairs (the formal
//! `P` — "set of all possible paths" — of Algorithm 1) and computes the
//! diversity figures the accuracy argument leans on.

use crate::clos::ClosTopology;
use crate::ids::{HostId, LinkId, Node};
use crate::route::Path;

impl ClosTopology {
    /// Enumerates every ECMP-admissible path from `src` to `dst` —
    /// all combinations of the equal-cost choices a five-tuple could
    /// hash to. The actual path of any given tuple is one element.
    ///
    /// Sizes are bounded by the topology (`n1`, `n1·n2·n1` for intra-/
    /// inter-pod), so this is enumeration, not search.
    pub fn all_paths(&self, src: HostId, dst: HostId) -> Vec<Path> {
        if src == dst {
            return Vec::new();
        }
        let src_tor = self.host_tor(src);
        let dst_tor = self.host_tor(dst);
        let src_pod = self.host_pod(src);
        let dst_pod = self.host_pod(dst);

        let link = |a: Node, b: Node| -> LinkId {
            self.link_between(a, b)
                .expect("enumerated hops are adjacent by construction")
        };

        if src_tor == dst_tor {
            return vec![Path::new(
                vec![Node::Host(src), Node::Switch(src_tor), Node::Host(dst)],
                vec![
                    link(Node::Host(src), Node::Switch(src_tor)),
                    link(Node::Switch(src_tor), Node::Host(dst)),
                ],
            )];
        }

        let mut out = Vec::new();
        if src_pod == dst_pod {
            for j in 0..self.params().n1 {
                let t1 = self.t1(src_pod, j);
                let nodes = vec![
                    Node::Host(src),
                    Node::Switch(src_tor),
                    Node::Switch(t1),
                    Node::Switch(dst_tor),
                    Node::Host(dst),
                ];
                let links = nodes.windows(2).map(|w| link(w[0], w[1])).collect();
                out.push(Path::new(nodes, links));
            }
            return out;
        }

        for j in 0..self.params().n1 {
            for l in 0..self.params().n2 {
                for m in 0..self.params().n1 {
                    let up_t1 = self.t1(src_pod, j);
                    let t2 = self.t2(l);
                    let down_t1 = self.t1(dst_pod, m);
                    let nodes = vec![
                        Node::Host(src),
                        Node::Switch(src_tor),
                        Node::Switch(up_t1),
                        Node::Switch(t2),
                        Node::Switch(down_t1),
                        Node::Switch(dst_tor),
                        Node::Host(dst),
                    ];
                    let links = nodes.windows(2).map(|w| link(w[0], w[1])).collect();
                    out.push(Path::new(nodes, links));
                }
            }
        }
        out
    }

    /// The number of ECMP-admissible paths between two hosts: 1 (same
    /// rack), `n1` (same pod), or `n1²·n2` (cross-pod).
    pub fn path_diversity(&self, src: HostId, dst: HostId) -> usize {
        if src == dst {
            return 0;
        }
        let same_tor = self.host_tor(src) == self.host_tor(dst);
        if same_tor {
            1
        } else if self.host_pod(src) == self.host_pod(dst) {
            usize::from(self.params().n1)
        } else {
            usize::from(self.params().n1).pow(2) * usize::from(self.params().n2)
        }
    }

    /// The probability that a uniformly random admissible path between
    /// `src` and `dst` traverses `link` — the quantity the §5.1 vote
    /// adjustment estimates ("finding what fraction of these flows go
    /// through k by assuming ECMP distributes flows uniformly at
    /// random").
    pub fn path_traversal_probability(&self, src: HostId, dst: HostId, link: LinkId) -> f64 {
        let paths = self.all_paths(src, dst);
        if paths.is_empty() {
            return 0.0;
        }
        let hits = paths.iter().filter(|p| p.contains_link(link)).count();
        hits as f64 / paths.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ClosParams;
    use std::collections::HashSet;
    use vigil_packet::FiveTuple;

    fn topo() -> ClosTopology {
        ClosTopology::new(ClosParams::tiny(), 5).unwrap()
    }

    #[test]
    fn diversity_counts_match_enumeration() {
        let t = topo();
        let same_rack = (HostId(0), HostId(1));
        let same_pod = (HostId(0), HostId(5));
        let cross_pod = (HostId(0), HostId(t.num_hosts() as u32 - 1));
        for (a, b) in [same_rack, same_pod, cross_pod] {
            assert_eq!(t.all_paths(a, b).len(), t.path_diversity(a, b));
        }
        // tiny(): n1 = 3, n2 = 4 ⇒ cross-pod diversity = 9 · 4 = 36.
        assert_eq!(t.path_diversity(cross_pod.0, cross_pod.1), 36);
        assert_eq!(t.path_diversity(same_pod.0, same_pod.1), 3);
        assert_eq!(t.path_diversity(same_rack.0, same_rack.1), 1);
        assert_eq!(t.path_diversity(HostId(0), HostId(0)), 0);
    }

    #[test]
    fn enumerated_paths_are_distinct_and_valid() {
        let t = topo();
        let (a, b) = (HostId(0), HostId(t.num_hosts() as u32 - 1));
        let paths = t.all_paths(a, b);
        let mut seen = HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.links.clone()), "duplicate path");
            assert_eq!(p.hop_count(), 6);
            for (i, l) in p.links.iter().enumerate() {
                let link = t.link(*l);
                assert_eq!(link.from, p.nodes[i]);
                assert_eq!(link.to, p.nodes[i + 1]);
            }
        }
    }

    #[test]
    fn routed_path_is_among_enumerated() {
        let t = topo();
        let (a, b) = (HostId(2), HostId(t.num_hosts() as u32 - 3));
        let all: HashSet<Vec<LinkId>> = t.all_paths(a, b).into_iter().map(|p| p.links).collect();
        for sp in 0..32u16 {
            let tuple = FiveTuple::tcp(t.host_ip(a), 40_000 + sp, t.host_ip(b), 443);
            let routed = t.route(&tuple, a, b).unwrap();
            assert!(all.contains(&routed.links), "routed path not in P");
        }
    }

    #[test]
    fn traversal_probability_structure() {
        let t = topo();
        let (a, b) = (HostId(0), HostId(t.num_hosts() as u32 - 1));
        // The host uplink is on every path.
        let up = t
            .link_between(Node::Host(a), Node::Switch(t.host_tor(a)))
            .unwrap();
        assert_eq!(t.path_traversal_probability(a, b, up), 1.0);
        // A specific ToR→T1 uplink is on 1/n1 of the paths.
        let some_t1 = t.t1(t.host_pod(a), 0);
        let l1 = t
            .link_between(Node::Switch(t.host_tor(a)), Node::Switch(some_t1))
            .unwrap();
        let p = t.path_traversal_probability(a, b, l1);
        assert!((p - 1.0 / 3.0).abs() < 1e-12, "got {p}");
        // A link in an unrelated pod is on no path.
        let foreign_tor = t.tor(t.host_pod(a), 3);
        let foreign = t
            .link_between(Node::Switch(foreign_tor), Node::Switch(some_t1))
            .unwrap();
        assert_eq!(t.path_traversal_probability(a, b, foreign), 0.0);
    }

    #[test]
    fn single_pod_cluster_paths() {
        let t = ClosTopology::new(ClosParams::test_cluster(), 1).unwrap();
        let (a, b) = (HostId(0), HostId(t.num_hosts() as u32 - 1));
        let paths = t.all_paths(a, b);
        assert_eq!(paths.len(), usize::from(t.params().n1)); // 4
        for p in paths {
            assert_eq!(p.hop_count(), 4);
        }
    }
}
