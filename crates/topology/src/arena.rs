//! Path interning for the epoch hot path.
//!
//! A Clos fabric has very few *distinct* paths — at most `n1²·n2` between
//! any host pair, and the ECMP hash maps the epoch's thousands of flows
//! onto that small set. Storing an owned `Vec<Node>` + `Vec<LinkId>` per
//! flow therefore repeats the same handful of sequences thousands of
//! times. [`PathArena`] interns each distinct path once, as contiguous
//! ranges over two backing vectors, and hands out a copyable [`PathId`]
//! whose `links`/`nodes` accessors are zero-allocation slice views.
//!
//! Interning is keyed by the link sequence (which uniquely determines the
//! node sequence for any path with at least one link) plus the origin
//! node (which disambiguates zero-link partial paths — a flow blackholed
//! at its own host has an empty link list but a meaningful origin).

use crate::ids::{LinkId, Node};
use crate::route::Path;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Index of an interned path within one [`PathArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

impl PathId {
    /// The raw index, convenient for dense per-path tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where one interned path lives in the backing vectors.
#[derive(Debug, Clone, Copy)]
struct Span {
    node_start: u32,
    link_start: u32,
    hops: u32,
}

/// Interned path storage: each distinct path is stored once, as a
/// `(node range, link range)` pair over two backing vectors.
#[derive(Debug, Clone, Default)]
pub struct PathArena {
    nodes: Vec<Node>,
    links: Vec<LinkId>,
    spans: Vec<Span>,
    /// Dedup index: hash of `(origin, links)` → candidate ids. Buckets
    /// resolve collisions by slice comparison, so lookups never allocate.
    dedup: HashMap<u64, Vec<PathId>>,
}

impl PathArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct paths interned.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Drops every interned path, keeping the allocated capacity — call
    /// at a topology boundary (link ids are only meaningful within one
    /// topology).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.links.clear();
        self.spans.clear();
        self.dedup.clear();
    }

    /// Interns a path given as parallel node/link sequences (the
    /// [`Path`] invariant `nodes.len() == links.len() + 1` is required).
    /// Returns the existing id when an identical path was interned
    /// before; otherwise copies the sequences into the backing store.
    pub fn intern(&mut self, nodes: &[Node], links: &[LinkId]) -> PathId {
        assert_eq!(
            nodes.len(),
            links.len() + 1,
            "a path with L links visits exactly L+1 nodes"
        );
        let key = Self::key(nodes[0], links);
        if let Some(bucket) = self.dedup.get(&key) {
            for &id in bucket {
                if self.links(id) == links && self.nodes(id)[0] == nodes[0] {
                    return id;
                }
            }
        }
        let id = PathId(self.spans.len() as u32);
        self.spans.push(Span {
            node_start: self.nodes.len() as u32,
            link_start: self.links.len() as u32,
            hops: links.len() as u32,
        });
        self.nodes.extend_from_slice(nodes);
        self.links.extend_from_slice(links);
        self.dedup.entry(key).or_default().push(id);
        id
    }

    /// Interns an owned [`Path`].
    pub fn intern_path(&mut self, path: &Path) -> PathId {
        self.intern(&path.nodes, &path.links)
    }

    /// The interned path's link sequence (no allocation).
    pub fn links(&self, id: PathId) -> &[LinkId] {
        let s = self.spans[id.index()];
        &self.links[s.link_start as usize..(s.link_start + s.hops) as usize]
    }

    /// The interned path's node sequence (no allocation).
    pub fn nodes(&self, id: PathId) -> &[Node] {
        let s = self.spans[id.index()];
        &self.nodes[s.node_start as usize..(s.node_start + s.hops + 1) as usize]
    }

    /// Link count (`h` in the paper's `1/h` vote weight).
    pub fn hop_count(&self, id: PathId) -> usize {
        self.spans[id.index()].hops as usize
    }

    /// Materializes an owned [`Path`] (two allocations — the only ones
    /// left on the per-flow path; everything upstream is slice reuse).
    pub fn to_path(&self, id: PathId) -> Path {
        Path::new(self.nodes(id).to_vec(), self.links(id).to_vec())
    }

    fn key(origin: Node, links: &[LinkId]) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        origin.hash(&mut h);
        links.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{HostId, SwitchId};

    fn path(host: u32, links: &[u32]) -> Path {
        let mut nodes = vec![Node::Host(HostId(host))];
        nodes.extend(links.iter().map(|l| Node::Switch(SwitchId(*l))));
        Path::new(nodes, links.iter().map(|l| LinkId(*l)).collect())
    }

    #[test]
    fn intern_dedupes_identical_paths() {
        let mut arena = PathArena::new();
        let p = path(0, &[1, 2, 3]);
        let a = arena.intern_path(&p);
        let b = arena.intern_path(&p);
        assert_eq!(a, b);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.to_path(a), p);
    }

    #[test]
    fn distinct_paths_get_distinct_ids() {
        let mut arena = PathArena::new();
        let a = arena.intern_path(&path(0, &[1, 2]));
        let b = arena.intern_path(&path(0, &[1, 3]));
        let c = arena.intern_path(&path(0, &[1, 2, 3]));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.links(a), &[LinkId(1), LinkId(2)]);
        assert_eq!(arena.hop_count(c), 3);
    }

    #[test]
    fn zero_link_partials_keyed_by_origin() {
        // A flow blackholed at its own host interns `[Host(h)]` with no
        // links; different hosts must not collapse onto one id.
        let mut arena = PathArena::new();
        let a = arena.intern(&[Node::Host(HostId(0))], &[]);
        let b = arena.intern(&[Node::Host(HostId(1))], &[]);
        let a2 = arena.intern(&[Node::Host(HostId(0))], &[]);
        assert_ne!(a, b);
        assert_eq!(a, a2);
        assert_eq!(arena.hop_count(a), 0);
        assert_eq!(arena.nodes(a), &[Node::Host(HostId(0))]);
    }

    #[test]
    fn clear_resets_but_keeps_working() {
        let mut arena = PathArena::new();
        arena.intern_path(&path(0, &[1, 2]));
        arena.clear();
        assert!(arena.is_empty());
        let id = arena.intern_path(&path(5, &[7]));
        assert_eq!(id, PathId(0));
        assert_eq!(arena.links(id), &[LinkId(7)]);
    }

    #[test]
    fn roundtrip_preserves_value() {
        let mut arena = PathArena::new();
        let p = path(3, &[10, 11, 12, 13]);
        let id = arena.intern_path(&p);
        let q = arena.to_path(id);
        assert_eq!(p, q);
        assert_eq!(q.hop_count(), arena.hop_count(id));
    }

    #[test]
    #[should_panic(expected = "L+1 nodes")]
    fn invariant_enforced() {
        let mut arena = PathArena::new();
        arena.intern(&[Node::Host(HostId(0))], &[LinkId(1)]);
    }
}
