//! Topology parameters (the paper's Definition 1 symbols).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of a Clos topology (paper Definition 1 / Table 2):
/// `npod` pods × (`n0` ToRs + `n1` T1 switches), `n2` global T2 switches,
/// `hosts_per_tor = H` hosts under each ToR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClosParams {
    /// Number of pods (`npod`).
    pub npod: u16,
    /// ToR switches per pod (`n0`).
    pub n0: u16,
    /// Tier-1 switches per pod (`n1`).
    pub n1: u16,
    /// Global tier-2 switches (`n2`). May be 0 only in single-pod
    /// topologies (no inter-pod traffic exists to use them).
    pub n2: u16,
    /// Hosts per ToR (`H`).
    pub hosts_per_tor: u16,
}

/// Why a parameter set was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// Some count that must be ≥ 1 is zero.
    ZeroCount(&'static str),
    /// Multi-pod topologies need tier-2 switches to connect the pods.
    MissingTier2,
    /// The IPv4 addressing scheme bounds each dimension to 200.
    TooLarge(&'static str),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::ZeroCount(which) => write!(f, "{which} must be at least 1"),
            ParamError::MissingTier2 => {
                write!(
                    f,
                    "n2 must be at least 1 when npod > 1 (pods need tier-2 to interconnect)"
                )
            }
            ParamError::TooLarge(which) => write!(f, "{which} exceeds the addressing limit of 200"),
        }
    }
}

impl std::error::Error for ParamError {}

impl ClosParams {
    /// The topology of the paper's §6 simulations: "4160 links, 2 pods, and
    /// 20 ToRs per pod". With `n1 = 16`, `n2 = 20`, `H = 20` the directional
    /// link count is exactly `2·(npod·n0·H + npod·n0·n1 + npod·n1·n2)
    /// = 2·(800 + 640 + 640) = 4160`.
    pub fn paper_sim() -> Self {
        Self {
            npod: 2,
            n0: 20,
            n1: 16,
            n2: 20,
            hosts_per_tor: 20,
        }
    }

    /// The paper's §7 test cluster: 10 ToRs, 80 (directional switch-switch)
    /// links, 50 controlled hosts. One pod with `n1 = 4` gives
    /// `2·(10·4) = 80` directional level-1 links; `H = 5` gives 50 hosts.
    pub fn test_cluster() -> Self {
        Self {
            npod: 1,
            n0: 10,
            n1: 4,
            n2: 0,
            hosts_per_tor: 5,
        }
    }

    /// A small topology for unit tests and the quickstart example.
    pub fn tiny() -> Self {
        Self {
            npod: 2,
            n0: 4,
            n1: 3,
            n2: 4,
            hosts_per_tor: 4,
        }
    }

    /// Same shape as [`ClosParams::paper_sim`] but with a different number
    /// of pods (the §6.7 network-size sweep).
    pub fn paper_sim_with_pods(npod: u16) -> Self {
        Self {
            npod,
            ..Self::paper_sim()
        }
    }

    /// An oversubscribed variant of `self`: the edge (ToRs and hosts) is
    /// unchanged while both spine layers shrink by `factor` (min 1 switch
    /// each). A `factor` of 2 doubles the ToR→T1 oversubscription ratio —
    /// the scenario-matrix topology axis uses this to stress 007 where
    /// path diversity (and thus vote dilution, Theorem 2's `α`) differs
    /// from the paper's symmetric fabric.
    pub fn with_oversubscription(self, factor: u16) -> Self {
        assert!(factor >= 1, "oversubscription factor must be at least 1");
        Self {
            n1: (self.n1 / factor).max(1),
            n2: if self.n2 == 0 {
                0
            } else {
                (self.n2 / factor).max(1)
            },
            ..self
        }
    }

    /// Spine links per pod-direction: the T1↔T2 bipartite degree product
    /// (`n1·n2`), 0 for single-tier fabrics. [`crate::degrade::DegradeSpec`]
    /// withdraws a fraction of these pairs to model a degraded fabric.
    pub fn spine_pairs_per_pod(&self) -> u32 {
        u32::from(self.n1) * u32::from(self.n2)
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.npod == 0 {
            return Err(ParamError::ZeroCount("npod"));
        }
        if self.n0 == 0 {
            return Err(ParamError::ZeroCount("n0"));
        }
        if self.n1 == 0 {
            return Err(ParamError::ZeroCount("n1"));
        }
        if self.hosts_per_tor == 0 {
            return Err(ParamError::ZeroCount("hosts_per_tor"));
        }
        if self.npod > 1 && self.n2 == 0 {
            return Err(ParamError::MissingTier2);
        }
        for (v, name) in [
            (self.npod, "npod"),
            (self.n0, "n0"),
            (self.n1, "n1"),
            (self.n2, "n2"),
            (self.hosts_per_tor, "hosts_per_tor"),
        ] {
            if v > 200 {
                return Err(ParamError::TooLarge(name));
            }
        }
        Ok(())
    }

    /// Total number of hosts.
    pub fn num_hosts(&self) -> u32 {
        u32::from(self.npod) * u32::from(self.n0) * u32::from(self.hosts_per_tor)
    }

    /// Total number of switches (ToR + T1 per pod, global T2).
    pub fn num_switches(&self) -> u32 {
        u32::from(self.npod) * (u32::from(self.n0) + u32::from(self.n1)) + u32::from(self.n2)
    }

    /// Total number of **directional** links, host↔ToR included:
    /// `2·(npod·n0·H + npod·n0·n1 + npod·n1·n2)`.
    pub fn num_links(&self) -> u32 {
        let per_dir = u32::from(self.npod) * u32::from(self.n0) * u32::from(self.hosts_per_tor)
            + u32::from(self.npod) * u32::from(self.n0) * u32::from(self.n1)
            + u32::from(self.npod) * u32::from(self.n1) * u32::from(self.n2);
        2 * per_dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sim_matches_4160_links() {
        let p = ClosParams::paper_sim();
        p.validate().unwrap();
        assert_eq!(p.num_links(), 4160);
        assert_eq!(p.npod, 2);
        assert_eq!(p.n0, 20);
    }

    #[test]
    fn test_cluster_matches_80_switch_links() {
        let p = ClosParams::test_cluster();
        p.validate().unwrap();
        // 80 directional switch-switch links + 100 host links
        let switch_links = 2 * u32::from(p.npod) * u32::from(p.n0) * u32::from(p.n1);
        assert_eq!(switch_links, 80);
        assert_eq!(p.num_hosts(), 50);
    }

    #[test]
    fn zero_counts_rejected() {
        for field in 0..4 {
            let mut p = ClosParams::tiny();
            match field {
                0 => p.npod = 0,
                1 => p.n0 = 0,
                2 => p.n1 = 0,
                _ => p.hosts_per_tor = 0,
            }
            assert!(matches!(p.validate(), Err(ParamError::ZeroCount(_))));
        }
    }

    #[test]
    fn multi_pod_needs_t2() {
        let p = ClosParams {
            n2: 0,
            ..ClosParams::tiny()
        };
        assert_eq!(p.validate(), Err(ParamError::MissingTier2));
    }

    #[test]
    fn single_pod_without_t2_is_fine() {
        ClosParams::test_cluster().validate().unwrap();
    }

    #[test]
    fn oversized_rejected() {
        let p = ClosParams {
            n0: 201,
            ..ClosParams::tiny()
        };
        assert!(matches!(p.validate(), Err(ParamError::TooLarge("n0"))));
    }

    #[test]
    fn counts_consistent() {
        let p = ClosParams::tiny();
        assert_eq!(p.num_hosts(), 2 * 4 * 4);
        assert_eq!(p.num_switches(), 2 * (4 + 3) + 4);
        assert_eq!(p.num_links(), 2 * (2 * 4 * 4 + 2 * 4 * 3 + 2 * 3 * 4));
    }
}
