//! The Clos topology: switches, hosts, directional links, addressing, and
//! ECMP routing.

use crate::alias::AliasMap;
use crate::ecmp;
use crate::ids::{HostId, LinkId, Node, SwitchId, SwitchKind};
use crate::params::{ClosParams, ParamError};
use crate::route::{Path, RouteError, RouteScratch, Routed};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use vigil_packet::FiveTuple;

/// Classification of a directional link — Figure 11 evaluates detection by
/// exactly these location classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LinkKind {
    /// Host (server) to its ToR.
    HostToTor,
    /// ToR down to a host.
    TorToHost,
    /// ToR up to a tier-1 switch (level 1, up direction).
    TorToT1,
    /// Tier-1 down to a ToR (level 1, down direction).
    T1ToTor,
    /// Tier-1 up to a tier-2 switch (level 2, up direction).
    T1ToT2,
    /// Tier-2 down to a tier-1 (level 2, down direction).
    T2ToT1,
}

impl LinkKind {
    /// True for level-1 links (ToR↔T1) in either direction.
    pub fn is_level1(self) -> bool {
        matches!(self, LinkKind::TorToT1 | LinkKind::T1ToTor)
    }

    /// True for level-2 links (T1↔T2) in either direction.
    pub fn is_level2(self) -> bool {
        matches!(self, LinkKind::T1ToT2 | LinkKind::T2ToT1)
    }

    /// True for host↔ToR links in either direction.
    pub fn is_host_link(self) -> bool {
        matches!(self, LinkKind::HostToTor | LinkKind::TorToHost)
    }
}

/// A directional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Stable id (dense index).
    pub id: LinkId,
    /// Location class.
    pub kind: LinkKind,
    /// Transmitting endpoint.
    pub from: Node,
    /// Receiving endpoint.
    pub to: Node,
}

/// The built topology: every entity table plus the ECMP seeds.
///
/// Construction is deterministic given `(params, seed)`; all ids are dense
/// indices so per-entity state elsewhere in the workspace can live in flat
/// vectors.
#[derive(Debug, Clone)]
pub struct ClosTopology {
    params: ClosParams,
    switch_kinds: Vec<SwitchKind>,
    switch_ips: Vec<Ipv4Addr>,
    host_ips: Vec<Ipv4Addr>,
    links: Vec<Link>,
    link_lookup: HashMap<(Node, Node), LinkId>,
    alias: AliasMap,
    host_by_ip: HashMap<Ipv4Addr, HostId>,
    ecmp_seeds: Vec<u64>,
}

impl ClosTopology {
    /// Builds the topology. `seed` drives the per-switch ECMP seeds (the
    /// proprietary, reboot-varying hash initializers of §9.1).
    pub fn new(params: ClosParams, seed: u64) -> Result<Self, ParamError> {
        params.validate()?;
        let npod = u32::from(params.npod);
        let n0 = u32::from(params.n0);
        let n1 = u32::from(params.n1);
        let n2 = u32::from(params.n2);
        let h = u32::from(params.hosts_per_tor);

        // --- switches -----------------------------------------------------
        let num_switches = params.num_switches();
        let mut switch_kinds = Vec::with_capacity(num_switches as usize);
        for pod in 0..npod {
            for idx in 0..n0 {
                switch_kinds.push(SwitchKind::Tor {
                    pod: pod as u16,
                    idx: idx as u16,
                });
            }
        }
        for pod in 0..npod {
            for idx in 0..n1 {
                switch_kinds.push(SwitchKind::T1 {
                    pod: pod as u16,
                    idx: idx as u16,
                });
            }
        }
        for idx in 0..n2 {
            switch_kinds.push(SwitchKind::T2 { idx: idx as u16 });
        }

        // Addressing: hosts live in 10.pod.tor.(1+idx); switch loopbacks in
        // 10.220+tier.x.y. Parameters are validated ≤ 200 so no octet
        // overflows and the ranges never collide.
        let mut switch_ips = Vec::with_capacity(switch_kinds.len());
        let mut alias = AliasMap::new();
        for (i, kind) in switch_kinds.iter().enumerate() {
            let ip = match kind {
                SwitchKind::Tor { pod, idx } => Ipv4Addr::new(10, 220, *pod as u8, *idx as u8),
                SwitchKind::T1 { pod, idx } => Ipv4Addr::new(10, 221, *pod as u8, *idx as u8),
                SwitchKind::T2 { idx } => Ipv4Addr::new(10, 222, 0, *idx as u8),
            };
            switch_ips.push(ip);
            alias.register(ip, SwitchId(i as u32));
        }

        // --- hosts ---------------------------------------------------------
        let num_hosts = params.num_hosts();
        let mut host_ips = Vec::with_capacity(num_hosts as usize);
        let mut host_by_ip = HashMap::with_capacity(num_hosts as usize);
        for pod in 0..npod {
            for tor in 0..n0 {
                for idx in 0..h {
                    let ip = Ipv4Addr::new(10, pod as u8, tor as u8, (idx + 1) as u8);
                    let id = HostId(host_ips.len() as u32);
                    host_ips.push(ip);
                    host_by_ip.insert(ip, id);
                }
            }
        }

        // --- links ----------------------------------------------------------
        let mut links = Vec::with_capacity(params.num_links() as usize);
        let mut link_lookup = HashMap::with_capacity(params.num_links() as usize);
        let push = |links: &mut Vec<Link>,
                    lookup: &mut HashMap<(Node, Node), LinkId>,
                    kind: LinkKind,
                    from: Node,
                    to: Node| {
            let id = LinkId(links.len() as u32);
            links.push(Link { id, kind, from, to });
            let prev = lookup.insert((from, to), id);
            debug_assert!(prev.is_none(), "duplicate link {from:?} -> {to:?}");
        };

        let tor_id = |pod: u32, idx: u32| SwitchId(pod * n0 + idx);
        let t1_id = |pod: u32, idx: u32| SwitchId(npod * n0 + pod * n1 + idx);
        let t2_id = |idx: u32| SwitchId(npod * (n0 + n1) + idx);
        let host_id = |pod: u32, tor: u32, idx: u32| HostId((pod * n0 + tor) * h + idx);

        for pod in 0..npod {
            for tor in 0..n0 {
                for idx in 0..h {
                    let hid = Node::Host(host_id(pod, tor, idx));
                    let tid = Node::Switch(tor_id(pod, tor));
                    push(&mut links, &mut link_lookup, LinkKind::HostToTor, hid, tid);
                    push(&mut links, &mut link_lookup, LinkKind::TorToHost, tid, hid);
                }
            }
        }
        for pod in 0..npod {
            for tor in 0..n0 {
                for t1 in 0..n1 {
                    let a = Node::Switch(tor_id(pod, tor));
                    let b = Node::Switch(t1_id(pod, t1));
                    push(&mut links, &mut link_lookup, LinkKind::TorToT1, a, b);
                    push(&mut links, &mut link_lookup, LinkKind::T1ToTor, b, a);
                }
            }
        }
        for pod in 0..npod {
            for t1 in 0..n1 {
                for t2 in 0..n2 {
                    let a = Node::Switch(t1_id(pod, t1));
                    let b = Node::Switch(t2_id(t2));
                    push(&mut links, &mut link_lookup, LinkKind::T1ToT2, a, b);
                    push(&mut links, &mut link_lookup, LinkKind::T2ToT1, b, a);
                }
            }
        }

        // --- ECMP seeds -------------------------------------------------
        let ecmp_seeds = (0..switch_kinds.len() as u64)
            .map(|i| splitmix(seed ^ splitmix(i)))
            .collect();

        Ok(Self {
            params,
            switch_kinds,
            switch_ips,
            host_ips,
            links,
            link_lookup,
            alias,
            host_by_ip,
            ecmp_seeds,
        })
    }

    /// The construction parameters.
    pub fn params(&self) -> &ClosParams {
        &self.params
    }

    /// Total number of directional links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Total number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.host_ips.len()
    }

    /// Total number of switches.
    pub fn num_switches(&self) -> usize {
        self.switch_kinds.len()
    }

    /// All links, id order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Link metadata by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The directional link from `from` to `to`, if adjacent.
    pub fn link_between(&self, from: Node, to: Node) -> Option<LinkId> {
        self.link_lookup.get(&(from, to)).copied()
    }

    /// Switch kind by id.
    pub fn switch_kind(&self, id: SwitchId) -> SwitchKind {
        self.switch_kinds[id.0 as usize]
    }

    /// Switch loopback address (the source of its ICMP replies).
    pub fn switch_ip(&self, id: SwitchId) -> Ipv4Addr {
        self.switch_ips[id.0 as usize]
    }

    /// Host address.
    pub fn host_ip(&self, id: HostId) -> Ipv4Addr {
        self.host_ips[id.0 as usize]
    }

    /// The alias map (ICMP source → switch).
    pub fn alias(&self) -> &AliasMap {
        &self.alias
    }

    /// Resolves a host address back to its id.
    pub fn host_by_ip(&self, ip: Ipv4Addr) -> Option<HostId> {
        self.host_by_ip.get(&ip).copied()
    }

    /// The ToR switch a host hangs off.
    pub fn host_tor(&self, host: HostId) -> SwitchId {
        let h = u32::from(self.params.hosts_per_tor);
        SwitchId(host.0 / h)
    }

    /// The pod a host lives in.
    pub fn host_pod(&self, host: HostId) -> u16 {
        match self.switch_kind(self.host_tor(host)) {
            SwitchKind::Tor { pod, .. } => pod,
            _ => unreachable!("host_tor always returns a ToR"),
        }
    }

    /// ToR switch id from (pod, idx).
    pub fn tor(&self, pod: u16, idx: u16) -> SwitchId {
        debug_assert!(pod < self.params.npod && idx < self.params.n0);
        SwitchId(u32::from(pod) * u32::from(self.params.n0) + u32::from(idx))
    }

    /// T1 switch id from (pod, idx).
    pub fn t1(&self, pod: u16, idx: u16) -> SwitchId {
        debug_assert!(pod < self.params.npod && idx < self.params.n1);
        let base = u32::from(self.params.npod) * u32::from(self.params.n0);
        SwitchId(base + u32::from(pod) * u32::from(self.params.n1) + u32::from(idx))
    }

    /// T2 switch id from idx.
    pub fn t2(&self, idx: u16) -> SwitchId {
        debug_assert!(idx < self.params.n2);
        let base =
            u32::from(self.params.npod) * (u32::from(self.params.n0) + u32::from(self.params.n1));
        SwitchId(base + u32::from(idx))
    }

    /// The hosts under one ToR, in id order.
    pub fn hosts_under(&self, tor: SwitchId) -> impl Iterator<Item = HostId> + '_ {
        let h = u32::from(self.params.hosts_per_tor);
        let start = tor.0 * h;
        (start..start + h).map(HostId)
    }

    /// All host ids.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> {
        (0..self.num_hosts() as u32).map(HostId)
    }

    /// Current ECMP seed of a switch.
    pub fn ecmp_seed(&self, switch: SwitchId) -> u64 {
        self.ecmp_seeds[switch.0 as usize]
    }

    /// Replaces a switch's ECMP seed — models the reboot/failure-induced
    /// hash changes of §9.1 ("ECMP functions … have initialization 'seeds'
    /// that change with every reboot of the switch").
    pub fn reseed_switch(&mut self, switch: SwitchId, seed: u64) {
        self.ecmp_seeds[switch.0 as usize] = seed;
    }

    /// Routes a five-tuple between two hosts with no link exclusions.
    ///
    /// Infallible except for `src == dst`, which is a caller bug in the
    /// traffic generators and is reported as [`RouteError::SameHost`].
    pub fn route(&self, tuple: &FiveTuple, src: HostId, dst: HostId) -> Result<Path, RouteError> {
        self.route_filtered(tuple, src, dst, &|_| false)
    }

    /// Routes a five-tuple between two hosts, skipping next hops whose
    /// links are `excluded` (administratively down / BGP-withdrawn). When a
    /// switch has no live next hop the packet is blackholed and the partial
    /// path is returned — 007's analysis engine explicitly consumes such
    /// partial traceroutes (§4.2, "Traceroute itself may fail … it directly
    /// pinpoints the faulty link").
    pub fn route_filtered(
        &self,
        tuple: &FiveTuple,
        src: HostId,
        dst: HostId,
        excluded: &dyn Fn(LinkId) -> bool,
    ) -> Result<Path, RouteError> {
        let mut scratch = RouteScratch::new();
        match self.route_filtered_into(tuple, src, dst, excluded, &mut scratch)? {
            Routed::Complete => Ok(Path::new(scratch.nodes, scratch.links)),
            Routed::Blackholed => Err(RouteError::Blackhole {
                partial: Path::new(scratch.nodes, scratch.links),
            }),
        }
    }

    /// The allocation-free variant of [`route_filtered`]: writes the
    /// routed node/link sequences into caller-owned [`RouteScratch`]
    /// buffers instead of allocating fresh vectors per call. The epoch
    /// simulator routes every flow through one scratch; [`route_filtered`]
    /// is a thin wrapper that materializes an owned [`Path`].
    ///
    /// Returns [`Routed::Complete`] when the path reaches `dst`,
    /// [`Routed::Blackholed`] when every next hop at some switch was
    /// excluded (the scratch then holds the partial path — §4.2's
    /// fault-pinpointing partial traceroute).
    ///
    /// [`route_filtered`]: Self::route_filtered
    pub fn route_filtered_into(
        &self,
        tuple: &FiveTuple,
        src: HostId,
        dst: HostId,
        excluded: &dyn Fn(LinkId) -> bool,
        scratch: &mut RouteScratch,
    ) -> Result<Routed, RouteError> {
        if src == dst {
            return Err(RouteError::SameHost);
        }
        let src_tor = self.host_tor(src);
        let dst_tor = self.host_tor(dst);
        let src_pod = self.host_pod(src);
        let dst_pod = self.host_pod(dst);

        scratch.nodes.clear();
        scratch.links.clear();
        scratch.nodes.push(Node::Host(src));

        // Appends the hop to `to` unless its link is excluded; `false`
        // leaves the scratch holding the blackholed prefix.
        let step = |scratch: &mut RouteScratch, to: Node| -> bool {
            let from = *scratch.nodes.last().expect("path starts non-empty");
            let lid = self
                .link_between(from, to)
                .expect("consecutive route nodes are adjacent by construction");
            if excluded(lid) {
                return false;
            }
            scratch.nodes.push(to);
            scratch.links.push(lid);
            true
        };

        // Host to its ToR: the only uplink; excluded ⇒ blackhole at host.
        if !step(scratch, Node::Switch(src_tor)) {
            return Ok(Routed::Blackholed);
        }

        if src_tor == dst_tor {
            if !step(scratch, Node::Host(dst)) {
                return Ok(Routed::Blackholed);
            }
            return Ok(Routed::Complete);
        }

        // ECMP choice at the source ToR: which T1 to ascend to.
        let up_t1 = self.ecmp_choose(
            src_tor,
            tuple,
            |i| {
                let t1 = self.t1(src_pod, i as u16);
                self.link_between(Node::Switch(src_tor), Node::Switch(t1))
                    .expect("ToR connects to every pod T1")
            },
            u32::from(self.params.n1) as usize,
            excluded,
        );
        let Some(up_t1) = up_t1.map(|idx| self.t1(src_pod, idx as u16)) else {
            return Ok(Routed::Blackholed);
        };
        if !step(scratch, Node::Switch(up_t1)) {
            return Ok(Routed::Blackholed);
        }

        if src_pod == dst_pod {
            // Intra-pod: T1 descends straight to the destination ToR.
            if !step(scratch, Node::Switch(dst_tor)) || !step(scratch, Node::Host(dst)) {
                return Ok(Routed::Blackholed);
            }
            return Ok(Routed::Complete);
        }

        // ECMP choice at the T1: which T2 to ascend to.
        let t2 = self.ecmp_choose(
            up_t1,
            tuple,
            |i| {
                let t2 = self.t2(i as u16);
                self.link_between(Node::Switch(up_t1), Node::Switch(t2))
                    .expect("every T1 connects to every T2")
            },
            u32::from(self.params.n2) as usize,
            excluded,
        );
        let Some(t2) = t2.map(|idx| self.t2(idx as u16)) else {
            return Ok(Routed::Blackholed);
        };
        if !step(scratch, Node::Switch(t2)) {
            return Ok(Routed::Blackholed);
        }

        // ECMP choice at the T2: which T1 of the destination pod to descend to.
        let down_t1 = self.ecmp_choose(
            t2,
            tuple,
            |i| {
                let t1 = self.t1(dst_pod, i as u16);
                self.link_between(Node::Switch(t2), Node::Switch(t1))
                    .expect("every T2 connects to every pod T1")
            },
            u32::from(self.params.n1) as usize,
            excluded,
        );
        let Some(down_t1) = down_t1.map(|idx| self.t1(dst_pod, idx as u16)) else {
            return Ok(Routed::Blackholed);
        };
        if !step(scratch, Node::Switch(down_t1))
            || !step(scratch, Node::Switch(dst_tor))
            || !step(scratch, Node::Host(dst))
        {
            return Ok(Routed::Blackholed);
        }
        Ok(Routed::Complete)
    }

    /// ECMP selection over `n` candidates at `switch`, restricted to
    /// candidates whose link is not excluded. Returns the chosen candidate
    /// index, or `None` when every candidate is excluded.
    ///
    /// Matching real switches, the hash selects among the *live* candidate
    /// set: when links die, BGP withdraws them and the ECMP group shrinks
    /// (which is also why paths move after failures, §9.1). The live set
    /// is never materialized: one pass counts it, the hash picks a rank,
    /// a second pass finds the ranked candidate — the routing hot path
    /// stays allocation-free.
    fn ecmp_choose(
        &self,
        switch: SwitchId,
        tuple: &FiveTuple,
        link_of: impl Fn(usize) -> LinkId,
        n: usize,
        excluded: &dyn Fn(LinkId) -> bool,
    ) -> Option<usize> {
        let live_count = (0..n).filter(|&i| !excluded(link_of(i))).count();
        if live_count == 0 {
            return None;
        }
        let pick = ecmp::select(self.ecmp_seed(switch), tuple, live_count);
        (0..n).filter(|&i| !excluded(link_of(i))).nth(pick)
    }
}

/// SplitMix64 step used to derive per-switch seeds (sequence-increment
/// variant of the shared [`crate::splitmix64`] finalizer).
fn splitmix(z: u64) -> u64 {
    crate::splitmix64(z.wrapping_add(0x9e37_79b9_7f4a_7c15))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ClosTopology {
        ClosTopology::new(ClosParams::tiny(), 42).unwrap()
    }

    fn tuple(sp: u16, src: Ipv4Addr, dst: Ipv4Addr) -> FiveTuple {
        FiveTuple::tcp(src, sp, dst, 443)
    }

    #[test]
    fn counts_match_params() {
        let t = topo();
        let p = ClosParams::tiny();
        assert_eq!(t.num_hosts() as u32, p.num_hosts());
        assert_eq!(t.num_switches() as u32, p.num_switches());
        assert_eq!(t.num_links() as u32, p.num_links());
    }

    #[test]
    fn paper_sim_has_4160_links() {
        let t = ClosTopology::new(ClosParams::paper_sim(), 0).unwrap();
        assert_eq!(t.num_links(), 4160);
    }

    #[test]
    fn switch_id_layout() {
        let t = topo();
        assert_eq!(
            t.switch_kind(t.tor(0, 0)),
            SwitchKind::Tor { pod: 0, idx: 0 }
        );
        assert_eq!(
            t.switch_kind(t.tor(1, 3)),
            SwitchKind::Tor { pod: 1, idx: 3 }
        );
        assert_eq!(t.switch_kind(t.t1(0, 2)), SwitchKind::T1 { pod: 0, idx: 2 });
        assert_eq!(t.switch_kind(t.t2(3)), SwitchKind::T2 { idx: 3 });
    }

    #[test]
    fn host_tor_and_pod() {
        let t = topo();
        // hosts 0..4 under pod0-tor0, hosts 4..8 under pod0-tor1, etc.
        assert_eq!(t.host_tor(HostId(0)), t.tor(0, 0));
        assert_eq!(t.host_tor(HostId(5)), t.tor(0, 1));
        assert_eq!(t.host_pod(HostId(0)), 0);
        let last = HostId(t.num_hosts() as u32 - 1);
        assert_eq!(t.host_pod(last), 1);
        assert_eq!(t.host_tor(last), t.tor(1, 3));
    }

    #[test]
    fn hosts_under_tor() {
        let t = topo();
        let hosts: Vec<_> = t.hosts_under(t.tor(0, 1)).collect();
        assert_eq!(hosts, vec![HostId(4), HostId(5), HostId(6), HostId(7)]);
    }

    #[test]
    fn alias_resolves_every_switch() {
        let t = topo();
        for s in 0..t.num_switches() as u32 {
            let id = SwitchId(s);
            assert_eq!(t.alias().resolve(t.switch_ip(id)), Some(id));
        }
    }

    #[test]
    fn host_ips_unique_and_resolvable() {
        let t = topo();
        for h in t.hosts() {
            assert_eq!(t.host_by_ip(t.host_ip(h)), Some(h));
        }
    }

    #[test]
    fn link_lookup_is_inverse_of_links() {
        let t = topo();
        for l in t.links() {
            assert_eq!(t.link_between(l.from, l.to), Some(l.id));
        }
    }

    #[test]
    fn link_kinds_counted() {
        let t = topo();
        let p = ClosParams::tiny();
        let count = |k: LinkKind| t.links().iter().filter(|l| l.kind == k).count() as u32;
        let hosts = u32::from(p.npod) * u32::from(p.n0) * u32::from(p.hosts_per_tor);
        assert_eq!(count(LinkKind::HostToTor), hosts);
        assert_eq!(count(LinkKind::TorToHost), hosts);
        let l1 = u32::from(p.npod) * u32::from(p.n0) * u32::from(p.n1);
        assert_eq!(count(LinkKind::TorToT1), l1);
        assert_eq!(count(LinkKind::T1ToTor), l1);
        let l2 = u32::from(p.npod) * u32::from(p.n1) * u32::from(p.n2);
        assert_eq!(count(LinkKind::T1ToT2), l2);
        assert_eq!(count(LinkKind::T2ToT1), l2);
    }

    #[test]
    fn route_same_tor_is_two_hops() {
        let t = topo();
        let (a, b) = (HostId(0), HostId(1));
        let ft = tuple(50000, t.host_ip(a), t.host_ip(b));
        let p = t.route(&ft, a, b).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.nodes.first(), Some(&Node::Host(a)));
        assert_eq!(p.nodes.last(), Some(&Node::Host(b)));
    }

    #[test]
    fn route_intra_pod_is_four_hops() {
        let t = topo();
        let (a, b) = (HostId(0), HostId(5)); // tor0 → tor1, same pod
        let ft = tuple(50000, t.host_ip(a), t.host_ip(b));
        let p = t.route(&ft, a, b).unwrap();
        assert_eq!(p.hop_count(), 4);
    }

    #[test]
    fn route_inter_pod_is_six_hops() {
        let t = topo();
        let a = HostId(0);
        let b = HostId(t.num_hosts() as u32 - 1); // other pod
        let ft = tuple(50000, t.host_ip(a), t.host_ip(b));
        let p = t.route(&ft, a, b).unwrap();
        assert_eq!(p.hop_count(), 6);
        // up: host, tor, t1, t2, then down t1, tor, host
        assert!(matches!(
            t.switch_kind(p.nodes[3].switch().unwrap()),
            SwitchKind::T2 { .. }
        ));
    }

    #[test]
    fn route_links_are_consistent_with_nodes() {
        let t = topo();
        let a = HostId(2);
        let b = HostId(t.num_hosts() as u32 - 2);
        let ft = tuple(51000, t.host_ip(a), t.host_ip(b));
        let p = t.route(&ft, a, b).unwrap();
        for (i, lid) in p.links.iter().enumerate() {
            let l = t.link(*lid);
            assert_eq!(l.from, p.nodes[i]);
            assert_eq!(l.to, p.nodes[i + 1]);
        }
    }

    #[test]
    fn route_same_host_rejected() {
        let t = topo();
        let a = HostId(0);
        let ft = tuple(50000, t.host_ip(a), t.host_ip(a));
        assert_eq!(t.route(&ft, a, a).unwrap_err(), RouteError::SameHost);
    }

    #[test]
    fn route_is_deterministic_per_tuple() {
        let t = topo();
        let a = HostId(0);
        let b = HostId(t.num_hosts() as u32 - 1);
        let ft = tuple(50000, t.host_ip(a), t.host_ip(b));
        let p1 = t.route(&ft, a, b).unwrap();
        let p2 = t.route(&ft, a, b).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn distinct_tuples_spread_over_paths() {
        let t = topo();
        let a = HostId(0);
        let b = HostId(t.num_hosts() as u32 - 1);
        let mut distinct = std::collections::HashSet::new();
        for sp in 0..64u16 {
            let ft = tuple(40000 + sp, t.host_ip(a), t.host_ip(b));
            distinct.insert(t.route(&ft, a, b).unwrap().links);
        }
        // 3 ECMP choices (n1 × n2 × n1 = 3·4·3 = 36 possible paths); 64
        // flows must hit well more than one.
        assert!(distinct.len() > 5, "only {} distinct paths", distinct.len());
    }

    #[test]
    fn exclusion_diverts_flow() {
        let t = topo();
        let a = HostId(0);
        let b = HostId(t.num_hosts() as u32 - 1);
        let ft = tuple(50000, t.host_ip(a), t.host_ip(b));
        let p = t.route(&ft, a, b).unwrap();
        // Exclude the chosen ToR→T1 link; the flow must take another T1.
        let dead = p.links[1];
        let q = t.route_filtered(&ft, a, b, &|l| l == dead).unwrap();
        assert_ne!(q.links[1], dead);
        assert_eq!(q.hop_count(), 6);
    }

    #[test]
    fn excluding_all_uplinks_blackholes() {
        let t = topo();
        let a = HostId(0);
        let b = HostId(t.num_hosts() as u32 - 1);
        let ft = tuple(50000, t.host_ip(a), t.host_ip(b));
        let src_tor = t.host_tor(a);
        let err = t
            .route_filtered(&ft, a, b, &|l| {
                t.link(l).kind == LinkKind::TorToT1 && t.link(l).from == Node::Switch(src_tor)
            })
            .unwrap_err();
        match err {
            RouteError::Blackhole { partial } => {
                assert_eq!(partial.hop_count(), 1); // reached the ToR only
                assert_eq!(partial.nodes.last(), Some(&Node::Switch(src_tor)));
            }
            other => panic!("expected blackhole, got {other:?}"),
        }
    }

    #[test]
    fn reseeding_moves_flows() {
        let mut t = topo();
        let a = HostId(0);
        let b = HostId(t.num_hosts() as u32 - 1);
        // Find a tuple whose path moves when the source ToR is reseeded.
        let src_tor = t.host_tor(a);
        let moved = (0..64u16).any(|sp| {
            let ft = tuple(40000 + sp, t.host_ip(a), t.host_ip(b));
            let before = t.route(&ft, a, b).unwrap();
            t.reseed_switch(src_tor, 0x1234_5678 + u64::from(sp));
            let after = t.route(&ft, a, b).unwrap();
            after != before
        });
        assert!(moved, "reseeding never moved any flow");
    }

    #[test]
    fn single_pod_topology_routes() {
        let t = ClosTopology::new(ClosParams::test_cluster(), 1).unwrap();
        let a = HostId(0);
        let b = HostId(t.num_hosts() as u32 - 1);
        let ft = tuple(50000, t.host_ip(a), t.host_ip(b));
        let p = t.route(&ft, a, b).unwrap();
        assert_eq!(p.hop_count(), 4); // no T2 tier in a single pod
    }
}
