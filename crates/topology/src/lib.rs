//! Clos datacenter topology for the `vigil` reproduction of 007 (NSDI 2018).
//!
//! The paper's Definition 1: a Clos topology has `npod` pods, each with `n0`
//! top-of-rack (ToR) switches (with `H` hosts each) and `n1` tier-1
//! switches; ToR↔T1 form a complete bipartite network inside each pod
//! (*level 1 links*), and every pod's T1 switches connect to all `n2`
//! global tier-2 switches (*level 2 links*).
//!
//! Everything 007 does is parameterized by this structure:
//!
//! * **ECMP routing** (§4.2): packets of one five-tuple follow one path,
//!   chosen by per-switch hashes ([`ecmp`], [`route`]).
//! * **Directional links** (Figure 11 distinguishes ToR→T1 from T1→ToR
//!   failures), including host↔ToR links (§8.3: 48 % of blamed links are
//!   server↔ToR).
//! * **Router aliasing** (§4.2): mapping ICMP source IPs back to switch
//!   identities from the known topology ([`alias`]).
//! * **Theorem 1** (ICMP rate safety) and **Theorem 2/3** (voting accuracy)
//!   bound calculators ([`bounds`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod arena;
pub mod bounds;
pub mod clos;
pub mod degrade;
pub mod ecmp;
pub mod ids;
pub mod params;
pub mod paths;
pub mod route;
pub mod route_table;

pub use clos::{ClosTopology, Link, LinkKind};
pub use degrade::DegradeSpec;

/// The SplitMix64 finalizer — the workspace's one canonical bit mixer
/// for deterministic, seed-stable hashing (ECMP switch seeds, degraded
/// spine selection, the SLB gate's per-tuple decisions). Mix inputs in
/// with XOR/golden-ratio multiplies, then finalize.
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
pub use arena::{PathArena, PathId};
pub use ids::{HostId, LinkId, LinkSet, Node, SwitchId, SwitchKind};
pub use params::ClosParams;
pub use route::{Path, RouteError, RouteScratch, Routed};
pub use route_table::{RouteDecision, RouteTable};
