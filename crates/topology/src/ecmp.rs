//! ECMP next-hop selection.
//!
//! Switches hash the five-tuple together with a per-switch seed to pick one
//! of several equal-cost next hops. Two properties matter to 007:
//!
//! * **Flow stickiness** (§4.2): all packets of one five-tuple — data *and*
//!   crafted probes — hash identically at every switch, so a probe follows
//!   the traced flow's path.
//! * **Unpredictability** (§9.1): the seeds are proprietary and change on
//!   switch reboot, so paths cannot be precomputed from headers; 007 must
//!   measure them. The fabric models reboots by reseeding switches.
//!
//! The hash is a SplitMix64-style avalanche over the canonical 13-byte
//! five-tuple encoding. It is *not* cryptographic — neither are the vendor
//! functions — it just needs determinism and decent uniformity, which the
//! tests check.

use vigil_packet::FiveTuple;

/// SplitMix64 finalizer: full-avalanche 64→64 mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes a five-tuple under a per-switch seed.
pub fn hash(seed: u64, tuple: &FiveTuple) -> u64 {
    let bytes = tuple.to_bytes();
    let mut acc = mix(seed);
    // Two 64-bit lanes cover the 13 bytes (8 + 5, zero padded).
    let lo = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    let mut hi_bytes = [0u8; 8];
    hi_bytes[..5].copy_from_slice(&bytes[8..13]);
    let hi = u64::from_le_bytes(hi_bytes);
    acc = mix(acc ^ lo);
    acc = mix(acc ^ hi);
    acc
}

/// Picks one of `n` equal-cost next hops for the tuple under the seed.
///
/// # Panics
///
/// Panics if `n == 0` — a switch with zero candidate next hops is a routing
/// bug the caller must handle (blackhole), not a hashing question.
pub fn select(seed: u64, tuple: &FiveTuple, n: usize) -> usize {
    assert!(n > 0, "ECMP selection requires at least one candidate");
    (hash(seed, tuple) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn tuple(sp: u16) -> FiveTuple {
        FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            sp,
            Ipv4Addr::new(10, 1, 0, 1),
            443,
        )
    }

    #[test]
    fn deterministic() {
        let t = tuple(50000);
        assert_eq!(hash(7, &t), hash(7, &t));
        assert_eq!(select(7, &t, 16), select(7, &t, 16));
    }

    #[test]
    fn seed_sensitivity() {
        // Reseeding a switch (reboot) must re-shuffle flows: over many
        // tuples, the selections under two seeds must differ somewhere.
        let differs = (0..64).any(|sp| select(1, &tuple(sp), 16) != select(2, &tuple(sp), 16));
        assert!(differs);
    }

    #[test]
    fn tuple_sensitivity() {
        let differs = (0..64).any(|sp| select(1, &tuple(sp), 16) != select(1, &tuple(sp + 1), 16));
        assert!(differs);
    }

    #[test]
    fn reasonable_uniformity() {
        // 16 bins, 16k flows: each bin should get 1000 ± a generous margin.
        let n = 16usize;
        let trials = 16_000u32;
        let mut counts = vec![0u32; n];
        for i in 0..trials {
            let t = FiveTuple::tcp(
                Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8),
                40_000 + (i % 20_000) as u16,
                Ipv4Addr::new(10, 9, (i >> 4) as u8, 1),
                443,
            );
            counts[select(0xdead_beef, &t, n)] += 1;
        }
        let expected = trials / n as u32;
        for (bin, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expected as i64).abs() < (expected as i64) / 2,
                "bin {bin} has {c}, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn select_stays_in_range() {
        for n in 1..=8 {
            for sp in 0..32 {
                assert!(select(42, &tuple(sp), n) < n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn zero_candidates_panics() {
        let _ = select(1, &tuple(1), 0);
    }

    #[test]
    fn forward_and_reverse_tuples_hash_independently() {
        // The reverse path (ACKs) generally differs from the forward path.
        let t = tuple(50000);
        let differs = (0..32).any(|s| hash(s, &t) != hash(s, &t.reversed()));
        assert!(differs);
    }
}
