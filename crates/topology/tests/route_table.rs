//! Property tests for epoch-compiled routing: on random Clos sizes and
//! random exclusion sets, [`RouteTable::lookup`] + [`RouteTable::emit_into`]
//! must reproduce a fresh `route_filtered_into` walk exactly — same
//! complete/blackhole verdicts, same node and link sequences (including
//! partial prefixes), same arena ids after interning. This is the
//! route-cache PR's no-behavior-change guarantee at the topology layer.

use proptest::prelude::*;
use vigil_packet::FiveTuple;
use vigil_topology::{
    ClosParams, ClosTopology, HostId, LinkId, LinkSet, PathArena, RouteError, RouteScratch,
    RouteTable, Routed,
};

/// A small random-but-valid Clos parameterization (single-pod fabrics
/// included: `npod == 1` exercises the intra-pod-only cascade).
fn params_strategy() -> impl Strategy<Value = ClosParams> {
    (1u16..=2, 2u16..=4, 2u16..=3, 2u16..=4, 1u16..=3).prop_map(
        |(npod, n0, n1, n2, hosts_per_tor)| ClosParams {
            npod,
            n0,
            n1,
            n2,
            hosts_per_tor,
        },
    )
}

/// Routes one flow through both the compiled table and the fresh walk
/// and asserts identical verdicts and identical emitted sequences.
fn assert_table_matches_walk(
    topo: &ClosTopology,
    table: &RouteTable,
    down: &LinkSet,
    arena: &mut PathArena,
    src: HostId,
    dst: HostId,
    sport: u16,
) {
    let tuple = FiveTuple::tcp(topo.host_ip(src), sport, topo.host_ip(dst), 443);
    let mut walk = RouteScratch::new();
    let walked = topo.route_filtered_into(&tuple, src, dst, &|l| down.contains(l), &mut walk);

    let mut emitted = RouteScratch::new();
    match table.lookup(topo, &tuple, src, dst) {
        Ok(decision) => {
            table.emit_into(&decision, &mut emitted);
            let verdict = walked.expect("walk agrees the flow is routable");
            assert_eq!(
                decision.routed(),
                verdict,
                "verdict mismatch {src:?}->{dst:?}"
            );
            assert_eq!(emitted.nodes, walk.nodes, "node sequence mismatch");
            assert_eq!(emitted.links, walk.links, "link sequence mismatch");
            // Interning both emissions must land on one arena id — the
            // path-memo's dedup invariant.
            let a = arena.intern(&walk.nodes, &walk.links);
            let b = arena.intern(&emitted.nodes, &emitted.links);
            assert_eq!(a, b, "table emission interns onto a different id");
        }
        Err(RouteError::SameHost) => {
            assert!(
                matches!(walked, Err(RouteError::SameHost)),
                "only the table called {src:?}->{dst:?} same-host"
            );
        }
        Err(other) => panic!("lookup returned unexpected error {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clean fabric: the compiled table reproduces the unfiltered walk
    /// for every drawn flow.
    #[test]
    fn table_matches_walk_on_clean_fabric(
        params in params_strategy(),
        seed in 0u64..1_000,
        flows in proptest::collection::vec((0u32..64, 0u32..64, 40_000u16..60_000), 1..20),
    ) {
        let topo = ClosTopology::new(params, seed).expect("strategy yields valid params");
        let hosts = topo.num_hosts() as u32;
        let down = LinkSet::new(topo.num_links());
        let table = RouteTable::compile(&topo, &down);
        let mut arena = PathArena::new();
        for (a, b, sport) in flows {
            let (src, dst) = (HostId(a % hosts), HostId(b % hosts));
            assert_table_matches_walk(&topo, &table, &down, &mut arena, src, dst, sport);
        }
    }

    /// Faulted fabric: random strided exclusion sets — dense enough to
    /// force diversions, truncated partials, and full blackholes (stride
    /// 2 downs every host uplink) — produce identical outcomes through
    /// the table and the walk.
    #[test]
    fn table_matches_walk_under_exclusions(
        params in params_strategy(),
        seed in 0u64..1_000,
        dead_stride in 2u32..7,
        dead_phase in 0u32..7,
        flows in proptest::collection::vec((0u32..64, 0u32..64, 40_000u16..60_000), 1..20),
    ) {
        let topo = ClosTopology::new(params, seed).expect("strategy yields valid params");
        let hosts = topo.num_hosts() as u32;
        let down: LinkSet = (0..topo.num_links() as u32)
            .filter(|l| (l + dead_phase) % dead_stride == 0)
            .map(LinkId)
            .collect();
        let table = RouteTable::compile(&topo, &down);
        let mut arena = PathArena::new();
        for (a, b, sport) in flows {
            let (src, dst) = (HostId(a % hosts), HostId(b % hosts));
            assert_table_matches_walk(&topo, &table, &down, &mut arena, src, dst, sport);
        }
    }

    /// The fingerprint keys tables by membership: any permutation of the
    /// same down-set fingerprints identically, and compiled tables match
    /// exactly the `(params, down)` pair they were built for.
    #[test]
    fn fingerprint_and_matches_key_by_down_set(
        params in params_strategy(),
        seed in 0u64..1_000,
        dead_stride in 2u32..7,
    ) {
        let topo = ClosTopology::new(params, seed).expect("strategy yields valid params");
        let down: LinkSet = (0..topo.num_links() as u32)
            .filter(|l| l % dead_stride == 0)
            .map(LinkId)
            .collect();
        let reversed: LinkSet = (0..topo.num_links() as u32)
            .rev()
            .filter(|l| l % dead_stride == 0)
            .map(LinkId)
            .collect();
        prop_assert_eq!(
            RouteTable::fingerprint_of(&down),
            RouteTable::fingerprint_of(&reversed)
        );
        let table = RouteTable::compile(&topo, &down);
        prop_assert!(table.matches(topo.params(), &down));
        let mut shifted = down.clone();
        shifted.insert(LinkId(topo.num_links() as u32 - 1));
        if shifted.len() != down.len() {
            prop_assert!(!table.matches(topo.params(), &shifted));
            prop_assert_ne!(
                RouteTable::fingerprint_of(&down),
                RouteTable::fingerprint_of(&shifted)
            );
        }
    }
}
