//! Property tests for the allocation-free routing path: on random Clos
//! sizes and random flows, `route_filtered_into` + `PathArena` interning
//! must reproduce `route_filtered`'s owned-`Vec` output exactly — the
//! hot-path refactor's no-behavior-change guarantee at the topology
//! layer.

use proptest::prelude::*;
use vigil_packet::FiveTuple;
use vigil_topology::{
    ClosParams, ClosTopology, HostId, LinkId, PathArena, RouteError, RouteScratch, Routed,
};

/// A small random-but-valid Clos parameterization.
fn params_strategy() -> impl Strategy<Value = ClosParams> {
    (1u16..=2, 2u16..=4, 2u16..=3, 2u16..=4, 1u16..=3).prop_map(
        |(npod, n0, n1, n2, hosts_per_tor)| ClosParams {
            npod,
            n0,
            n1,
            n2,
            hosts_per_tor,
        },
    )
}

/// Routes one flow both ways and asserts identical outcomes.
fn assert_routes_agree(
    topo: &ClosTopology,
    scratch: &mut RouteScratch,
    arena: &mut PathArena,
    src: HostId,
    dst: HostId,
    sport: u16,
    excluded: &dyn Fn(LinkId) -> bool,
) {
    let tuple = FiveTuple::tcp(topo.host_ip(src), sport, topo.host_ip(dst), 443);
    let owned = topo.route_filtered(&tuple, src, dst, excluded);
    let into = topo.route_filtered_into(&tuple, src, dst, excluded, scratch);
    match (owned, into) {
        (Ok(path), Ok(Routed::Complete)) => {
            let id = arena.intern(&scratch.nodes, &scratch.links);
            assert_eq!(arena.links(id), &path.links[..], "interned links differ");
            assert_eq!(arena.nodes(id), &path.nodes[..], "interned nodes differ");
            assert_eq!(arena.to_path(id), path, "materialized path differs");
            // Interning the same path again must dedupe onto the same id.
            assert_eq!(arena.intern(&path.nodes, &path.links), id);
        }
        (Err(RouteError::Blackhole { partial }), Ok(Routed::Blackholed)) => {
            let id = arena.intern(&scratch.nodes, &scratch.links);
            assert_eq!(arena.to_path(id), partial, "blackholed prefix differs");
        }
        (owned, into) => panic!("outcome mismatch: owned {owned:?} vs into {into:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unfiltered routing: every (src, dst, sport) draws the same path
    /// through the scratch buffers as through the allocating API, and
    /// the arena round-trips it.
    #[test]
    fn interned_routes_match_owned_routes(
        params in params_strategy(),
        seed in 0u64..1_000,
        flows in proptest::collection::vec((0u32..64, 0u32..64, 40_000u16..60_000), 1..20),
    ) {
        let topo = ClosTopology::new(params, seed).expect("strategy yields valid params");
        let hosts = topo.num_hosts() as u32;
        let mut scratch = RouteScratch::new();
        let mut arena = PathArena::new();
        for (a, b, sport) in flows {
            let (src, dst) = (HostId(a % hosts), HostId(b % hosts));
            if src == dst {
                continue;
            }
            assert_routes_agree(&topo, &mut scratch, &mut arena, src, dst, sport, &|_| false);
        }
    }

    /// Filtered routing: random link exclusions (including blackholes)
    /// produce identical complete/partial paths through both APIs.
    #[test]
    fn interned_routes_match_under_exclusions(
        params in params_strategy(),
        seed in 0u64..1_000,
        dead_stride in 2u32..7,
        flows in proptest::collection::vec((0u32..64, 0u32..64, 40_000u16..60_000), 1..20),
    ) {
        let topo = ClosTopology::new(params, seed).expect("strategy yields valid params");
        let hosts = topo.num_hosts() as u32;
        // Deterministic pseudo-random exclusion: every `dead_stride`-th
        // link is down — dense enough to exercise diversions and
        // blackholes across the drawn topologies.
        let excluded = move |l: LinkId| l.0 % dead_stride == 0;
        let mut scratch = RouteScratch::new();
        let mut arena = PathArena::new();
        for (a, b, sport) in flows {
            let (src, dst) = (HostId(a % hosts), HostId(b % hosts));
            if src == dst {
                continue;
            }
            assert_routes_agree(&topo, &mut scratch, &mut arena, src, dst, sport, &excluded);
        }
    }
}
