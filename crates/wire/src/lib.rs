//! The `AgentEvent` wire codec: how a host's 007 process puts evidence
//! on an actual socket to the centralized analysis agent (paper §6).
//!
//! The in-process streaming pipeline moves typed
//! [`AgentEvent`]s over a bounded channel; the
//! distributed service mode moves the same events over TCP or Unix
//! sockets as **length-prefixed frames**, in the `vigil_packet` idiom:
//! explicit big-endian layouts, checked parsing, an error enum per
//! failure shape, and proptest round-trips. No serde on the wire — the
//! frame layout is part of the protocol, not an implementation detail.
//!
//! ```text
//! frame := magic "007" (3B) | kind (1B) | payload_len (u32 BE) | checksum (u32 BE) | payload
//! ```
//!
//! The checksum is FNV-1a-32 over the kind byte, the length field, and
//! the payload — the wire is treated as unreliable (protocol v2): a
//! flipped bit anywhere in a frame is a typed [`FrameError::BadChecksum`]
//! (or a framing error), never a silently-wrong event.
//!
//! Frame kinds:
//!
//! | kind | frame | payload | direction |
//! |------|-------|---------|-----------|
//! | 1 | [`WireFrame::Hello`]     | version u16 ‖ flags u8 ‖ host_lo u32 ‖ host_hi u32 | agent → collector |
//! | 2 | `FlowOpen`               | host u32 ‖ seq u64 ‖ tuple 13B | agent → collector |
//! | 3 | `Evidence`               | seq u64 ‖ host u32 ‖ tuple 13B ‖ retx u32 ‖ complete u8 ‖ n u32 ‖ n × link u32 | agent → collector |
//! | 4 | `EpochTick`              | host u32 ‖ seq u64 ‖ epoch u64 | agent → collector |
//! | 5 | `Drain`                  | host u32 ‖ seq u64 | agent → collector |
//! | 6 | [`WireFrame::EpochDone`] | epoch u64 ‖ events u64 | agent → collector |
//! | 7 | [`WireFrame::ResumeAt`]  | epoch u64 | collector → agent |
//! | 8 | [`WireFrame::Heartbeat`] | (empty) | agent → collector |
//!
//! All integers big-endian; the 13-byte tuple is
//! [`FiveTuple::to_bytes`] (`src_ip ‖ dst_ip ‖ src_port ‖ dst_port ‖
//! protocol`). `Hello` must be a connection's first frame — it carries
//! the protocol version and the host-id range the connection will emit
//! for, which is what the collector's admission control checks.
//! `EpochDone` is the per-connection epoch barrier: the agent sends it
//! after the last event of an epoch, carrying the exact number of event
//! frames the epoch held, so the collector can verify completeness.
//! `ResumeAt { epoch }` is the collector's only utterance: every epoch
//! below `epoch` is settled; begin (or replay) at `epoch`. It serves as
//! the admission response after a `Hello`, the per-window ack
//! (`ResumeAt { w + 1 }`), and the replay request (`ResumeAt { w }` when
//! the window arrived incomplete). `Heartbeat` proves liveness while an
//! agent waits out a slow window.
//!
//! [`FrameReader::next_frame`] is strict (any framing error poisons the
//! stream); [`FrameReader::next_frame_lenient`] quarantines corrupt
//! bytes and resynchronizes on the next magic instead — the collector's
//! reading mode, with the skipped bytes surfaced via
//! [`FrameReader::quarantined_frames`] / [`quarantined_bytes`](FrameReader::quarantined_bytes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;

use std::fmt;
use std::io::{self, Read, Write};

use vigil_agents::{AgentEvent, TraceReport};
use vigil_packet::{FiveTuple, Protocol};
use vigil_topology::{HostId, LinkId};

/// The protocol version carried in every [`WireFrame::Hello`].
/// Version 2 added the header checksum, the `events` count on
/// [`WireFrame::EpochDone`], and the [`WireFrame::ResumeAt`] /
/// [`WireFrame::Heartbeat`] control frames.
pub const WIRE_VERSION: u16 = 2;

/// [`WireFrame::Hello`] flag: the agent reads collector responses
/// (acks, replay requests) and survives reconnects. The collector never
/// writes to a connection without this bit — writing into a socket a
/// fire-and-forget agent already closed raises a TCP reset that
/// discards any of its frames still buffered unread on the collector
/// side.
pub const HELLO_RESILIENT: u8 = 1;

/// Frame magic: every frame opens with these three bytes.
pub const MAGIC: [u8; 3] = *b"007";

/// Frames never carry more than this much payload; a length prefix
/// beyond it is [`FrameError::Malformed`], not an allocation request.
pub const MAX_PAYLOAD: usize = 1 << 20;

const HEADER_LEN: usize = 3 + 1 + 4 + 4;
const TUPLE_LEN: usize = 13;

const KIND_HELLO: u8 = 1;
const KIND_FLOW_OPEN: u8 = 2;
const KIND_EVIDENCE: u8 = 3;
const KIND_EPOCH_TICK: u8 = 4;
const KIND_DRAIN: u8 = 5;
const KIND_EPOCH_DONE: u8 = 6;
const KIND_RESUME_AT: u8 = 7;
const KIND_HEARTBEAT: u8 = 8;

/// FNV-1a-32 over the kind byte, the big-endian payload length, and the
/// payload bytes — the per-frame checksum of protocol v2.
pub fn frame_checksum(kind: u8, payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    let mut eat = |b: u8| {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    };
    eat(kind);
    for b in (payload.len() as u32).to_be_bytes() {
        eat(b);
    }
    for &b in payload {
        eat(b);
    }
    h
}

/// Errors produced when parsing a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does — read more bytes and retry.
    Truncated,
    /// The first bytes are not the `"007"` magic: this is not a frame
    /// stream (or the stream lost sync).
    BadMagic,
    /// The kind byte names no known frame kind.
    UnknownKind(u8),
    /// The header checksum does not cover the received bytes — the frame
    /// was corrupted in flight.
    BadChecksum,
    /// A length or field value is inconsistent with the layout.
    Malformed,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::Malformed => write!(f, "malformed frame payload"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One frame of the agent↔collector protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFrame {
    /// Connection handshake — must be the first frame. Carries the
    /// protocol version and the half-open host-id range `[host_lo,
    /// host_hi)` this connection emits events for.
    Hello {
        /// Protocol version ([`WIRE_VERSION`]).
        version: u16,
        /// Capability bits ([`HELLO_RESILIENT`]); unknown bits are
        /// ignored by the collector.
        flags: u8,
        /// First host id (inclusive).
        host_lo: u32,
        /// Last host id (exclusive).
        host_hi: u32,
    },
    /// A protocol event from a host agent.
    Event(AgentEvent),
    /// Per-connection epoch barrier: every event of `epoch` has been
    /// sent on this connection.
    EpochDone {
        /// The epoch that is now fully sent (0-based window index).
        epoch: u64,
        /// Event frames the epoch held on this connection — the
        /// collector checks its delivered count against this to decide
        /// between ack (`ResumeAt {epoch+1}`) and replay (`ResumeAt {epoch}`).
        events: u64,
    },
    /// Collector → agent: every epoch below `epoch` is settled; begin
    /// (or replay) at `epoch`. Sent after admission, as the per-window
    /// ack, and as the replay request for an incomplete window.
    ResumeAt {
        /// First unsettled epoch.
        epoch: u64,
    },
    /// Liveness beacon: no payload, no sequence — an agent waiting out a
    /// slow window sends these so the collector's idle timeout doesn't
    /// reap a healthy connection.
    Heartbeat,
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Serializes one frame onto `out` (appending; the buffer is not
/// cleared). The emitted bytes always parse back to an equal frame —
/// the proptests pin that round-trip for every variant.
pub fn emit_frame(frame: &WireFrame, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(0); // kind, patched below
    put_u32(out, 0); // payload length, patched below
    put_u32(out, 0); // checksum, patched below
    let kind = match frame {
        WireFrame::Hello {
            version,
            flags,
            host_lo,
            host_hi,
        } => {
            put_u16(out, *version);
            out.push(*flags);
            put_u32(out, *host_lo);
            put_u32(out, *host_hi);
            KIND_HELLO
        }
        WireFrame::Event(event) => match event {
            AgentEvent::FlowOpen { host, seq, tuple } => {
                put_u32(out, host.0);
                put_u64(out, *seq);
                out.extend_from_slice(&tuple.to_bytes());
                KIND_FLOW_OPEN
            }
            AgentEvent::Evidence { seq, report } => {
                put_u64(out, *seq);
                put_u32(out, report.host.0);
                out.extend_from_slice(&report.tuple.to_bytes());
                put_u32(out, report.retransmissions);
                out.push(report.complete as u8);
                put_u32(out, report.links.len() as u32);
                for link in &report.links {
                    put_u32(out, link.0);
                }
                KIND_EVIDENCE
            }
            AgentEvent::EpochTick { host, seq, epoch } => {
                put_u32(out, host.0);
                put_u64(out, *seq);
                put_u64(out, *epoch);
                KIND_EPOCH_TICK
            }
            AgentEvent::Drain { host, seq } => {
                put_u32(out, host.0);
                put_u64(out, *seq);
                KIND_DRAIN
            }
        },
        WireFrame::EpochDone { epoch, events } => {
            put_u64(out, *epoch);
            put_u64(out, *events);
            KIND_EPOCH_DONE
        }
        WireFrame::ResumeAt { epoch } => {
            put_u64(out, *epoch);
            KIND_RESUME_AT
        }
        WireFrame::Heartbeat => KIND_HEARTBEAT,
    };
    out[start + 3] = kind;
    let payload_len = (out.len() - start - HEADER_LEN) as u32;
    out[start + 4..start + 8].copy_from_slice(&payload_len.to_be_bytes());
    let csum = frame_checksum(kind, &out[start + HEADER_LEN..]);
    out[start + 8..start + 12].copy_from_slice(&csum.to_be_bytes());
}

/// A checked, consuming reader over one frame's payload bytes.
struct Payload<'a> {
    buf: &'a [u8],
}

impl<'a> Payload<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() < n {
            return Err(FrameError::Malformed);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn tuple(&mut self) -> Result<FiveTuple, FrameError> {
        let b = self.take(TUPLE_LEN)?;
        let protocol = Protocol::from_number(b[12]).ok_or(FrameError::Malformed)?;
        Ok(FiveTuple {
            src_ip: std::net::Ipv4Addr::new(b[0], b[1], b[2], b[3]),
            dst_ip: std::net::Ipv4Addr::new(b[4], b[5], b[6], b[7]),
            src_port: u16::from_be_bytes([b[8], b[9]]),
            dst_port: u16::from_be_bytes([b[10], b[11]]),
            protocol,
        })
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(FrameError::Malformed)
        }
    }
}

/// Parses one frame from the front of `buf`.
///
/// Returns the frame and the number of bytes it occupied.
/// [`FrameError::Truncated`] means `buf` holds a frame prefix — read
/// more bytes and retry; every other error is unrecoverable for the
/// position (a lenient reader resynchronizes on the next magic). Never
/// panics and never reads past the claimed frame, whatever the input.
pub fn parse_frame(buf: &[u8]) -> Result<(WireFrame, usize), FrameError> {
    if buf.len() < HEADER_LEN {
        // Report BadMagic as soon as the prefix can't be ours, so garbage
        // shorter than a header is not mistaken for a truncated frame.
        if !MAGIC.starts_with(&buf[..buf.len().min(3)]) {
            return Err(FrameError::BadMagic);
        }
        return Err(FrameError::Truncated);
    }
    if buf[..3] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let kind = buf[3];
    let payload_len = u32::from_be_bytes(buf[4..8].try_into().expect("len 4")) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(FrameError::Malformed);
    }
    let total = HEADER_LEN + payload_len;
    if buf.len() < total {
        return Err(FrameError::Truncated);
    }
    let claimed = u32::from_be_bytes(buf[8..12].try_into().expect("len 4"));
    let payload = &buf[HEADER_LEN..total];
    if frame_checksum(kind, payload) != claimed {
        return Err(FrameError::BadChecksum);
    }
    let mut p = Payload { buf: payload };
    let frame = match kind {
        KIND_HELLO => {
            let version = p.u16()?;
            let flags = p.take(1)?[0];
            let host_lo = p.u32()?;
            let host_hi = p.u32()?;
            WireFrame::Hello {
                version,
                flags,
                host_lo,
                host_hi,
            }
        }
        KIND_FLOW_OPEN => {
            let host = HostId(p.u32()?);
            let seq = p.u64()?;
            let tuple = p.tuple()?;
            WireFrame::Event(AgentEvent::FlowOpen { host, seq, tuple })
        }
        KIND_EVIDENCE => {
            let seq = p.u64()?;
            let host = HostId(p.u32()?);
            let tuple = p.tuple()?;
            let retransmissions = p.u32()?;
            let complete = match p.take(1)?[0] {
                0 => false,
                1 => true,
                _ => return Err(FrameError::Malformed),
            };
            let n = p.u32()? as usize;
            // The link list must account for exactly the remaining bytes.
            let mut links = Vec::with_capacity(n.min(MAX_PAYLOAD / 4));
            for _ in 0..n {
                links.push(LinkId(p.u32()?));
            }
            WireFrame::Event(AgentEvent::Evidence {
                seq,
                report: TraceReport {
                    host,
                    tuple,
                    retransmissions,
                    links,
                    complete,
                },
            })
        }
        KIND_EPOCH_TICK => {
            let host = HostId(p.u32()?);
            let seq = p.u64()?;
            let epoch = p.u64()?;
            WireFrame::Event(AgentEvent::EpochTick { host, seq, epoch })
        }
        KIND_DRAIN => {
            let host = HostId(p.u32()?);
            let seq = p.u64()?;
            WireFrame::Event(AgentEvent::Drain { host, seq })
        }
        KIND_EPOCH_DONE => {
            let epoch = p.u64()?;
            let events = p.u64()?;
            WireFrame::EpochDone { epoch, events }
        }
        KIND_RESUME_AT => {
            let epoch = p.u64()?;
            WireFrame::ResumeAt { epoch }
        }
        KIND_HEARTBEAT => WireFrame::Heartbeat,
        other => return Err(FrameError::UnknownKind(other)),
    };
    p.finish()?;
    Ok((frame, total))
}

/// Blocking frame reader over any [`Read`] (a socket, a file, a pipe).
///
/// Buffers internally; [`next_frame`](Self::next_frame) returns `None`
/// on a clean end-of-stream (EOF on a frame boundary) and an error when
/// the peer sent garbage or hung up mid-frame.
/// [`next_frame_lenient`](Self::next_frame_lenient) quarantines garbage
/// and resynchronizes instead.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    quarantined_frames: u64,
    quarantined_bytes: u64,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::with_capacity(8 * 1024),
            start: 0,
            quarantined_frames: 0,
            quarantined_bytes: 0,
        }
    }

    /// Resync events so far: each is one run of quarantined bytes that
    /// [`next_frame_lenient`](Self::next_frame_lenient) skipped to find
    /// the next frame boundary (≈ corrupt frames seen).
    pub fn quarantined_frames(&self) -> u64 {
        self.quarantined_frames
    }

    /// Total bytes skipped while resynchronizing.
    pub fn quarantined_bytes(&self) -> u64 {
        self.quarantined_bytes
    }

    fn reclaim(&mut self) {
        // Reclaim consumed space once it dominates the buffer.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    fn fill(&mut self) -> io::Result<bool> {
        let mut chunk = [0u8; 8 * 1024];
        let n = self.inner.read(&mut chunk)?;
        if n == 0 {
            return Ok(false);
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(true)
    }

    /// Reads the next frame, blocking for more bytes as needed. Strict:
    /// any framing error poisons the stream (`InvalidData`).
    pub fn next_frame(&mut self) -> io::Result<Option<WireFrame>> {
        loop {
            match parse_frame(&self.buf[self.start..]) {
                Ok((frame, used)) => {
                    self.start += used;
                    self.reclaim();
                    return Ok(Some(frame));
                }
                Err(FrameError::Truncated) => {
                    if !self.fill()? {
                        if self.start == self.buf.len() {
                            return Ok(None); // clean EOF on a boundary
                        }
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ));
                    }
                }
                Err(e) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
            }
        }
    }

    /// Reads the next frame, quarantining garbage: on any framing error
    /// other than truncation the reader skips forward to the next `"007"`
    /// magic (counting the skipped run in the quarantine counters) and
    /// keeps going. Mid-frame EOF is still an error — a torn connection
    /// is the caller's signal to reconcile, not bytes to skip.
    ///
    /// One caveat is inherent to length-prefixed framing: a corrupted
    /// length field that stays within [`MAX_PAYLOAD`] makes the reader
    /// wait for that many bytes before the checksum unmasks the frame;
    /// recovery then re-finds every swallowed frame (the buffer is only
    /// discarded byte-by-byte past verified boundaries), but a stalled
    /// peer can hold the wait — the collector's idle timeout bounds it.
    pub fn next_frame_lenient(&mut self) -> io::Result<Option<WireFrame>> {
        loop {
            match parse_frame(&self.buf[self.start..]) {
                Ok((frame, used)) => {
                    self.start += used;
                    self.reclaim();
                    return Ok(Some(frame));
                }
                Err(FrameError::Truncated) => {
                    if !self.fill()? {
                        if self.start == self.buf.len() {
                            return Ok(None);
                        }
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ));
                    }
                }
                Err(_) => {
                    // Resync: skip at least one byte, up to the next
                    // possible magic (keeping a 2-byte tail that could be
                    // a magic prefix still being received).
                    let window = &self.buf[self.start..];
                    let skip = match window[1..].windows(MAGIC.len()).position(|w| w == MAGIC) {
                        Some(k) => k + 1,
                        None => window.len().saturating_sub(MAGIC.len() - 1).max(1),
                    };
                    self.start += skip;
                    self.quarantined_bytes += skip as u64;
                    self.quarantined_frames += 1;
                    self.reclaim();
                }
            }
        }
    }
}

/// Buffered frame writer over any [`Write`].
#[derive(Debug)]
pub struct FrameWriter<W> {
    inner: W,
    scratch: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            scratch: Vec::with_capacity(4 * 1024),
        }
    }

    /// Serializes and writes one frame, as a single `write_all` call on
    /// the sink — a sink that treats each call as one frame (the chaos
    /// injector does) sees exact frame boundaries.
    pub fn write_frame(&mut self, frame: &WireFrame) -> io::Result<()> {
        self.scratch.clear();
        emit_frame(frame, &mut self.scratch);
        self.inner.write_all(&self.scratch)
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    /// The underlying sink (to retune a chaos injector mid-stream).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tuple() -> FiveTuple {
        FiveTuple::tcp(
            "10.0.0.1".parse().unwrap(),
            40_001,
            "10.0.1.1".parse().unwrap(),
            443,
        )
    }

    fn sample_frames() -> Vec<WireFrame> {
        vec![
            WireFrame::Hello {
                version: WIRE_VERSION,
                flags: HELLO_RESILIENT,
                host_lo: 0,
                host_hi: 16,
            },
            WireFrame::Event(AgentEvent::FlowOpen {
                host: HostId(3),
                seq: 0,
                tuple: tuple(),
            }),
            WireFrame::Event(AgentEvent::Evidence {
                seq: 1,
                report: TraceReport {
                    host: HostId(3),
                    tuple: tuple(),
                    retransmissions: 2,
                    links: vec![LinkId(1), LinkId(9), LinkId(40)],
                    complete: true,
                },
            }),
            WireFrame::Event(AgentEvent::EpochTick {
                host: HostId(3),
                seq: 2,
                epoch: 7,
            }),
            WireFrame::Event(AgentEvent::Drain {
                host: HostId(3),
                seq: 3,
            }),
            WireFrame::EpochDone {
                epoch: 7,
                events: 4,
            },
            WireFrame::ResumeAt { epoch: 8 },
            WireFrame::Heartbeat,
        ]
    }

    /// A raw frame with a *valid* checksum over arbitrary kind/payload —
    /// for reaching the post-checksum error paths.
    fn raw_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(kind);
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(&frame_checksum(kind, payload).to_be_bytes());
        buf.extend_from_slice(payload);
        buf
    }

    #[test]
    fn every_variant_round_trips() {
        for frame in sample_frames() {
            let mut buf = Vec::new();
            emit_frame(&frame, &mut buf);
            let (back, used) = parse_frame(&buf).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn frames_concatenate() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            emit_frame(f, &mut buf);
        }
        let mut at = 0;
        let mut out = Vec::new();
        while at < buf.len() {
            let (f, used) = parse_frame(&buf[at..]).unwrap();
            out.push(f);
            at += used;
        }
        assert_eq!(out, frames);
    }

    #[test]
    fn truncation_is_recoverable() {
        for frame in sample_frames() {
            let mut buf = Vec::new();
            emit_frame(&frame, &mut buf);
            for cut in 0..buf.len() {
                assert_eq!(
                    parse_frame(&buf[..cut]).unwrap_err(),
                    FrameError::Truncated,
                    "cut at {cut} of {}",
                    buf.len()
                );
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // The v2 contract: no flipped bit anywhere in a frame can yield
        // Ok — corruption is always a typed error (usually BadChecksum;
        // framing errors for bits in the magic/length).
        for frame in sample_frames() {
            let mut clean = Vec::new();
            emit_frame(&frame, &mut clean);
            for byte in 0..clean.len() {
                for bit in 0..8u8 {
                    let mut buf = clean.clone();
                    buf[byte] ^= 1 << bit;
                    assert!(
                        parse_frame(&buf).is_err(),
                        "flip of byte {byte} bit {bit} parsed as valid"
                    );
                }
            }
        }
    }

    #[test]
    fn garbage_prefix_is_bad_magic() {
        assert_eq!(
            parse_frame(b"GET / HTTP/1.0\r\n").unwrap_err(),
            FrameError::BadMagic
        );
        assert_eq!(parse_frame(b"X").unwrap_err(), FrameError::BadMagic);
        assert_eq!(parse_frame(b"00").unwrap_err(), FrameError::Truncated);
        assert_eq!(parse_frame(b"008AAAA").unwrap_err(), FrameError::BadMagic);
    }

    #[test]
    fn unknown_kind_and_oversize_rejected() {
        assert_eq!(
            parse_frame(&raw_frame(200, &[])).unwrap_err(),
            FrameError::UnknownKind(200)
        );

        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(KIND_DRAIN);
        buf.extend_from_slice(&(MAX_PAYLOAD as u32 + 1).to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        assert_eq!(parse_frame(&buf).unwrap_err(), FrameError::Malformed);
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        // A correctly-checksummed frame whose payload is one byte too
        // long must still fail the layout check.
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u64.to_be_bytes());
        payload.extend_from_slice(&0u64.to_be_bytes());
        payload.push(0xFF);
        assert_eq!(
            parse_frame(&raw_frame(KIND_EPOCH_DONE, &payload)).unwrap_err(),
            FrameError::Malformed
        );
    }

    #[test]
    fn corrupt_payload_is_bad_checksum() {
        let mut buf = Vec::new();
        emit_frame(&WireFrame::ResumeAt { epoch: 9 }, &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert_eq!(parse_frame(&buf).unwrap_err(), FrameError::BadChecksum);
    }

    #[test]
    fn reader_reassembles_split_stream() {
        struct Dribble {
            data: Vec<u8>,
            at: usize,
        }
        impl Read for Dribble {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.at >= self.data.len() {
                    return Ok(0);
                }
                // one byte at a time: worst-case fragmentation
                out[0] = self.data[self.at];
                self.at += 1;
                Ok(1)
            }
        }
        let frames = sample_frames();
        let mut data = Vec::new();
        for f in &frames {
            emit_frame(f, &mut data);
        }
        let mut reader = FrameReader::new(Dribble { data, at: 0 });
        let mut out = Vec::new();
        while let Some(f) = reader.next_frame().unwrap() {
            out.push(f);
        }
        assert_eq!(out, frames);
    }

    #[test]
    fn reader_flags_mid_frame_eof() {
        let mut data = Vec::new();
        emit_frame(
            &WireFrame::EpochDone {
                epoch: 1,
                events: 0,
            },
            &mut data,
        );
        data.truncate(data.len() - 2);
        let mut reader = FrameReader::new(io::Cursor::new(data));
        let err = reader.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn lenient_reader_resyncs_past_corruption() {
        let frames = sample_frames();
        let mut data = Vec::new();
        emit_frame(&frames[0], &mut data);
        data.extend_from_slice(b"\xDE\xAD\xBE\xEF garbage between frames");
        emit_frame(&frames[1], &mut data);
        // A corrupted frame (payload bit flip) followed by a clean one.
        let mut corrupt = Vec::new();
        emit_frame(&frames[2], &mut corrupt);
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        data.extend_from_slice(&corrupt);
        emit_frame(&frames[3], &mut data);

        let mut reader = FrameReader::new(io::Cursor::new(data));
        let mut out = Vec::new();
        while let Some(f) = reader.next_frame_lenient().unwrap() {
            out.push(f);
        }
        assert_eq!(
            out,
            vec![frames[0].clone(), frames[1].clone(), frames[3].clone()],
            "clean frames survive, corrupt bytes are skipped"
        );
        assert!(
            reader.quarantined_frames() >= 2,
            "both garbage runs counted"
        );
        assert!(reader.quarantined_bytes() > 0);
    }

    fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
        (
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            any::<u16>(),
            any::<bool>(),
        )
            .prop_map(|(src, dst, sp, dp, udp)| FiveTuple {
                src_ip: std::net::Ipv4Addr::from(src.to_be_bytes()),
                dst_ip: std::net::Ipv4Addr::from(dst.to_be_bytes()),
                src_port: sp,
                dst_port: dp,
                protocol: if udp { Protocol::Udp } else { Protocol::Tcp },
            })
    }

    /// One strategy covering every frame variant: a selector plus a
    /// superset of field draws, mapped onto the selected variant (the
    /// vendored proptest has no `prop_oneof!`).
    fn arb_frame() -> impl Strategy<Value = WireFrame> {
        (
            0u8..8,
            (any::<u32>(), any::<u64>(), any::<u64>(), any::<u16>()),
            arb_tuple(),
            (any::<u32>(), any::<bool>()),
            proptest::collection::vec(any::<u32>(), 0..12),
        )
            .prop_map(
                |(which, (host, seq, epoch, version), tuple, (retx, complete), links)| match which {
                    0 => WireFrame::Hello {
                        version,
                        flags: (seq % 251) as u8,
                        host_lo: host,
                        host_hi: epoch as u32,
                    },
                    1 => WireFrame::Event(AgentEvent::FlowOpen {
                        host: HostId(host),
                        seq,
                        tuple,
                    }),
                    2 => WireFrame::Event(AgentEvent::Evidence {
                        seq,
                        report: TraceReport {
                            host: HostId(host),
                            tuple,
                            retransmissions: retx,
                            links: links.into_iter().map(LinkId).collect(),
                            complete,
                        },
                    }),
                    3 => WireFrame::Event(AgentEvent::EpochTick {
                        host: HostId(host),
                        seq,
                        epoch,
                    }),
                    4 => WireFrame::Event(AgentEvent::Drain {
                        host: HostId(host),
                        seq,
                    }),
                    5 => WireFrame::EpochDone { epoch, events: seq },
                    6 => WireFrame::ResumeAt { epoch },
                    _ => WireFrame::Heartbeat,
                },
            )
    }

    proptest! {
        #[test]
        fn emit_parse_round_trip(frame in arb_frame()) {
            let mut buf = Vec::new();
            emit_frame(&frame, &mut buf);
            let (back, used) = parse_frame(&buf).unwrap();
            prop_assert_eq!(used, buf.len());
            prop_assert_eq!(back, frame);
        }

        #[test]
        fn every_truncation_is_truncated(frame in arb_frame(), frac in 0.0f64..1.0) {
            let mut buf = Vec::new();
            emit_frame(&frame, &mut buf);
            let cut = ((buf.len() as f64) * frac) as usize;
            prop_assert_eq!(parse_frame(&buf[..cut.min(buf.len() - 1)]).unwrap_err(),
                            FrameError::Truncated);
        }

        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = parse_frame(&bytes);
        }

        #[test]
        fn garbage_prefix_never_parses(mut bytes in proptest::collection::vec(any::<u8>(), 1..64),
                                       frame in arb_frame()) {
            // Force a non-magic first byte, then append a valid frame:
            // the strict parser must reject at the front, not resync
            // silently (resync is next_frame_lenient's explicit job).
            if bytes[0] == MAGIC[0] {
                bytes[0] = bytes[0].wrapping_add(1);
            }
            emit_frame(&frame, &mut bytes);
            prop_assert_eq!(parse_frame(&bytes).unwrap_err(), FrameError::BadMagic);
        }
    }
}
