//! The `AgentEvent` wire codec: how a host's 007 process puts evidence
//! on an actual socket to the centralized analysis agent (paper §6).
//!
//! The in-process streaming pipeline moves typed
//! [`AgentEvent`]s over a bounded channel; the
//! distributed service mode moves the same events over TCP or Unix
//! sockets as **length-prefixed frames**, in the `vigil_packet` idiom:
//! explicit big-endian layouts, checked parsing, an error enum per
//! failure shape, and proptest round-trips. No serde on the wire — the
//! frame layout is part of the protocol, not an implementation detail.
//!
//! ```text
//! frame := magic "007" (3B) | kind (1B) | payload_len (u32 BE) | payload
//! ```
//!
//! Frame kinds:
//!
//! | kind | frame | payload |
//! |------|-------|---------|
//! | 1 | [`WireFrame::Hello`]     | version u16 ‖ host_lo u32 ‖ host_hi u32 |
//! | 2 | `FlowOpen`               | host u32 ‖ seq u64 ‖ tuple 13B |
//! | 3 | `Evidence`               | seq u64 ‖ host u32 ‖ tuple 13B ‖ retx u32 ‖ complete u8 ‖ n u32 ‖ n × link u32 |
//! | 4 | `EpochTick`              | host u32 ‖ seq u64 ‖ epoch u64 |
//! | 5 | `Drain`                  | host u32 ‖ seq u64 |
//! | 6 | [`WireFrame::EpochDone`] | epoch u64 |
//!
//! All integers big-endian; the 13-byte tuple is
//! [`FiveTuple::to_bytes`] (`src_ip ‖ dst_ip ‖ src_port ‖ dst_port ‖
//! protocol`). `Hello` must be a connection's first frame — it carries
//! the protocol version and the host-id range the connection will emit
//! for, which is what the collector's admission control checks.
//! `EpochDone` is the per-connection epoch barrier: the agent sends it
//! after the last event of an epoch, so the collector knows the
//! connection is drained for that window.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::{self, Read, Write};

use vigil_agents::{AgentEvent, TraceReport};
use vigil_packet::{FiveTuple, Protocol};
use vigil_topology::{HostId, LinkId};

/// The protocol version carried in every [`WireFrame::Hello`].
pub const WIRE_VERSION: u16 = 1;

/// Frame magic: every frame opens with these three bytes.
pub const MAGIC: [u8; 3] = *b"007";

/// Frames never carry more than this much payload; a length prefix
/// beyond it is [`FrameError::Malformed`], not an allocation request.
pub const MAX_PAYLOAD: usize = 1 << 20;

const HEADER_LEN: usize = 3 + 1 + 4;
const TUPLE_LEN: usize = 13;

const KIND_HELLO: u8 = 1;
const KIND_FLOW_OPEN: u8 = 2;
const KIND_EVIDENCE: u8 = 3;
const KIND_EPOCH_TICK: u8 = 4;
const KIND_DRAIN: u8 = 5;
const KIND_EPOCH_DONE: u8 = 6;

/// Errors produced when parsing a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does — read more bytes and retry.
    Truncated,
    /// The first bytes are not the `"007"` magic: this is not a frame
    /// stream (or the stream lost sync).
    BadMagic,
    /// The kind byte names no known frame kind.
    UnknownKind(u8),
    /// A length or field value is inconsistent with the layout.
    Malformed,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Malformed => write!(f, "malformed frame payload"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One frame of the agent→collector protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFrame {
    /// Connection handshake — must be the first frame. Carries the
    /// protocol version and the half-open host-id range `[host_lo,
    /// host_hi)` this connection emits events for.
    Hello {
        /// Protocol version ([`WIRE_VERSION`]).
        version: u16,
        /// First host id (inclusive).
        host_lo: u32,
        /// Last host id (exclusive).
        host_hi: u32,
    },
    /// A protocol event from a host agent.
    Event(AgentEvent),
    /// Per-connection epoch barrier: every event of `epoch` has been
    /// sent on this connection.
    EpochDone {
        /// The epoch that is now fully sent (0-based window index).
        epoch: u64,
    },
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Serializes one frame onto `out` (appending; the buffer is not
/// cleared). The emitted bytes always parse back to an equal frame —
/// the proptests pin that round-trip for every variant.
pub fn emit_frame(frame: &WireFrame, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(0); // kind, patched below
    put_u32(out, 0); // payload length, patched below
    let kind = match frame {
        WireFrame::Hello {
            version,
            host_lo,
            host_hi,
        } => {
            put_u16(out, *version);
            put_u32(out, *host_lo);
            put_u32(out, *host_hi);
            KIND_HELLO
        }
        WireFrame::Event(event) => match event {
            AgentEvent::FlowOpen { host, seq, tuple } => {
                put_u32(out, host.0);
                put_u64(out, *seq);
                out.extend_from_slice(&tuple.to_bytes());
                KIND_FLOW_OPEN
            }
            AgentEvent::Evidence { seq, report } => {
                put_u64(out, *seq);
                put_u32(out, report.host.0);
                out.extend_from_slice(&report.tuple.to_bytes());
                put_u32(out, report.retransmissions);
                out.push(report.complete as u8);
                put_u32(out, report.links.len() as u32);
                for link in &report.links {
                    put_u32(out, link.0);
                }
                KIND_EVIDENCE
            }
            AgentEvent::EpochTick { host, seq, epoch } => {
                put_u32(out, host.0);
                put_u64(out, *seq);
                put_u64(out, *epoch);
                KIND_EPOCH_TICK
            }
            AgentEvent::Drain { host, seq } => {
                put_u32(out, host.0);
                put_u64(out, *seq);
                KIND_DRAIN
            }
        },
        WireFrame::EpochDone { epoch } => {
            put_u64(out, *epoch);
            KIND_EPOCH_DONE
        }
    };
    out[start + 3] = kind;
    let payload_len = (out.len() - start - HEADER_LEN) as u32;
    out[start + 4..start + 8].copy_from_slice(&payload_len.to_be_bytes());
}

/// A checked, consuming reader over one frame's payload bytes.
struct Payload<'a> {
    buf: &'a [u8],
}

impl<'a> Payload<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() < n {
            return Err(FrameError::Malformed);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn tuple(&mut self) -> Result<FiveTuple, FrameError> {
        let b = self.take(TUPLE_LEN)?;
        let protocol = Protocol::from_number(b[12]).ok_or(FrameError::Malformed)?;
        Ok(FiveTuple {
            src_ip: std::net::Ipv4Addr::new(b[0], b[1], b[2], b[3]),
            dst_ip: std::net::Ipv4Addr::new(b[4], b[5], b[6], b[7]),
            src_port: u16::from_be_bytes([b[8], b[9]]),
            dst_port: u16::from_be_bytes([b[10], b[11]]),
            protocol,
        })
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(FrameError::Malformed)
        }
    }
}

/// Parses one frame from the front of `buf`.
///
/// Returns the frame and the number of bytes it occupied.
/// [`FrameError::Truncated`] means `buf` holds a frame prefix — read
/// more bytes and retry; every other error is unrecoverable for the
/// stream. Never panics, whatever the input bytes.
pub fn parse_frame(buf: &[u8]) -> Result<(WireFrame, usize), FrameError> {
    if buf.len() < HEADER_LEN {
        // Report BadMagic as soon as the prefix can't be ours, so garbage
        // shorter than a header is not mistaken for a truncated frame.
        if !MAGIC.starts_with(&buf[..buf.len().min(3)]) {
            return Err(FrameError::BadMagic);
        }
        return Err(FrameError::Truncated);
    }
    if buf[..3] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let kind = buf[3];
    let payload_len = u32::from_be_bytes(buf[4..8].try_into().expect("len 4")) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(FrameError::Malformed);
    }
    let total = HEADER_LEN + payload_len;
    if buf.len() < total {
        return Err(FrameError::Truncated);
    }
    let mut p = Payload {
        buf: &buf[HEADER_LEN..total],
    };
    let frame = match kind {
        KIND_HELLO => {
            let version = p.u16()?;
            let host_lo = p.u32()?;
            let host_hi = p.u32()?;
            WireFrame::Hello {
                version,
                host_lo,
                host_hi,
            }
        }
        KIND_FLOW_OPEN => {
            let host = HostId(p.u32()?);
            let seq = p.u64()?;
            let tuple = p.tuple()?;
            WireFrame::Event(AgentEvent::FlowOpen { host, seq, tuple })
        }
        KIND_EVIDENCE => {
            let seq = p.u64()?;
            let host = HostId(p.u32()?);
            let tuple = p.tuple()?;
            let retransmissions = p.u32()?;
            let complete = match p.take(1)?[0] {
                0 => false,
                1 => true,
                _ => return Err(FrameError::Malformed),
            };
            let n = p.u32()? as usize;
            // The link list must account for exactly the remaining bytes.
            let mut links = Vec::with_capacity(n.min(MAX_PAYLOAD / 4));
            for _ in 0..n {
                links.push(LinkId(p.u32()?));
            }
            WireFrame::Event(AgentEvent::Evidence {
                seq,
                report: TraceReport {
                    host,
                    tuple,
                    retransmissions,
                    links,
                    complete,
                },
            })
        }
        KIND_EPOCH_TICK => {
            let host = HostId(p.u32()?);
            let seq = p.u64()?;
            let epoch = p.u64()?;
            WireFrame::Event(AgentEvent::EpochTick { host, seq, epoch })
        }
        KIND_DRAIN => {
            let host = HostId(p.u32()?);
            let seq = p.u64()?;
            WireFrame::Event(AgentEvent::Drain { host, seq })
        }
        KIND_EPOCH_DONE => {
            let epoch = p.u64()?;
            WireFrame::EpochDone { epoch }
        }
        other => return Err(FrameError::UnknownKind(other)),
    };
    p.finish()?;
    Ok((frame, total))
}

/// Blocking frame reader over any [`Read`] (a socket, a file, a pipe).
///
/// Buffers internally; [`next_frame`](Self::next_frame) returns `None`
/// on a clean end-of-stream (EOF on a frame boundary) and an error when
/// the peer sent garbage or hung up mid-frame.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::with_capacity(8 * 1024),
            start: 0,
        }
    }

    /// Reads the next frame, blocking for more bytes as needed.
    pub fn next_frame(&mut self) -> io::Result<Option<WireFrame>> {
        loop {
            match parse_frame(&self.buf[self.start..]) {
                Ok((frame, used)) => {
                    self.start += used;
                    // Reclaim consumed space once it dominates the buffer.
                    if self.start > 4096 && self.start * 2 > self.buf.len() {
                        self.buf.drain(..self.start);
                        self.start = 0;
                    }
                    return Ok(Some(frame));
                }
                Err(FrameError::Truncated) => {
                    let mut chunk = [0u8; 8 * 1024];
                    let n = self.inner.read(&mut chunk)?;
                    if n == 0 {
                        if self.start == self.buf.len() {
                            return Ok(None); // clean EOF on a boundary
                        }
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
            }
        }
    }
}

/// Buffered frame writer over any [`Write`].
#[derive(Debug)]
pub struct FrameWriter<W> {
    inner: W,
    scratch: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            scratch: Vec::with_capacity(4 * 1024),
        }
    }

    /// Serializes and writes one frame.
    pub fn write_frame(&mut self, frame: &WireFrame) -> io::Result<()> {
        self.scratch.clear();
        emit_frame(frame, &mut self.scratch);
        self.inner.write_all(&self.scratch)
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tuple() -> FiveTuple {
        FiveTuple::tcp(
            "10.0.0.1".parse().unwrap(),
            40_001,
            "10.0.1.1".parse().unwrap(),
            443,
        )
    }

    fn sample_frames() -> Vec<WireFrame> {
        vec![
            WireFrame::Hello {
                version: WIRE_VERSION,
                host_lo: 0,
                host_hi: 16,
            },
            WireFrame::Event(AgentEvent::FlowOpen {
                host: HostId(3),
                seq: 0,
                tuple: tuple(),
            }),
            WireFrame::Event(AgentEvent::Evidence {
                seq: 1,
                report: TraceReport {
                    host: HostId(3),
                    tuple: tuple(),
                    retransmissions: 2,
                    links: vec![LinkId(1), LinkId(9), LinkId(40)],
                    complete: true,
                },
            }),
            WireFrame::Event(AgentEvent::EpochTick {
                host: HostId(3),
                seq: 2,
                epoch: 7,
            }),
            WireFrame::Event(AgentEvent::Drain {
                host: HostId(3),
                seq: 3,
            }),
            WireFrame::EpochDone { epoch: 7 },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for frame in sample_frames() {
            let mut buf = Vec::new();
            emit_frame(&frame, &mut buf);
            let (back, used) = parse_frame(&buf).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn frames_concatenate() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            emit_frame(f, &mut buf);
        }
        let mut at = 0;
        let mut out = Vec::new();
        while at < buf.len() {
            let (f, used) = parse_frame(&buf[at..]).unwrap();
            out.push(f);
            at += used;
        }
        assert_eq!(out, frames);
    }

    #[test]
    fn truncation_is_recoverable() {
        for frame in sample_frames() {
            let mut buf = Vec::new();
            emit_frame(&frame, &mut buf);
            for cut in 0..buf.len() {
                assert_eq!(
                    parse_frame(&buf[..cut]).unwrap_err(),
                    FrameError::Truncated,
                    "cut at {cut} of {}",
                    buf.len()
                );
            }
        }
    }

    #[test]
    fn garbage_prefix_is_bad_magic() {
        assert_eq!(
            parse_frame(b"GET / HTTP/1.0\r\n").unwrap_err(),
            FrameError::BadMagic
        );
        assert_eq!(parse_frame(b"X").unwrap_err(), FrameError::BadMagic);
        assert_eq!(parse_frame(b"00").unwrap_err(), FrameError::Truncated);
        assert_eq!(parse_frame(b"008AAAA").unwrap_err(), FrameError::BadMagic);
    }

    #[test]
    fn unknown_kind_and_oversize_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(200);
        buf.extend_from_slice(&0u32.to_be_bytes());
        assert_eq!(parse_frame(&buf).unwrap_err(), FrameError::UnknownKind(200));

        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(KIND_DRAIN);
        buf.extend_from_slice(&(MAX_PAYLOAD as u32 + 1).to_be_bytes());
        assert_eq!(parse_frame(&buf).unwrap_err(), FrameError::Malformed);
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let mut buf = Vec::new();
        emit_frame(&WireFrame::EpochDone { epoch: 3 }, &mut buf);
        // Grow the payload by one byte and patch the length prefix.
        buf.push(0xFF);
        let len = (buf.len() - HEADER_LEN) as u32;
        buf[4..8].copy_from_slice(&len.to_be_bytes());
        assert_eq!(parse_frame(&buf).unwrap_err(), FrameError::Malformed);
    }

    #[test]
    fn reader_reassembles_split_stream() {
        struct Dribble {
            data: Vec<u8>,
            at: usize,
        }
        impl Read for Dribble {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.at >= self.data.len() {
                    return Ok(0);
                }
                // one byte at a time: worst-case fragmentation
                out[0] = self.data[self.at];
                self.at += 1;
                Ok(1)
            }
        }
        let frames = sample_frames();
        let mut data = Vec::new();
        for f in &frames {
            emit_frame(f, &mut data);
        }
        let mut reader = FrameReader::new(Dribble { data, at: 0 });
        let mut out = Vec::new();
        while let Some(f) = reader.next_frame().unwrap() {
            out.push(f);
        }
        assert_eq!(out, frames);
    }

    #[test]
    fn reader_flags_mid_frame_eof() {
        let mut data = Vec::new();
        emit_frame(&WireFrame::EpochDone { epoch: 1 }, &mut data);
        data.truncate(data.len() - 2);
        let mut reader = FrameReader::new(io::Cursor::new(data));
        let err = reader.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
        (
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            any::<u16>(),
            any::<bool>(),
        )
            .prop_map(|(src, dst, sp, dp, udp)| FiveTuple {
                src_ip: std::net::Ipv4Addr::from(src.to_be_bytes()),
                dst_ip: std::net::Ipv4Addr::from(dst.to_be_bytes()),
                src_port: sp,
                dst_port: dp,
                protocol: if udp { Protocol::Udp } else { Protocol::Tcp },
            })
    }

    /// One strategy covering every frame variant: a selector plus a
    /// superset of field draws, mapped onto the selected variant (the
    /// vendored proptest has no `prop_oneof!`).
    fn arb_frame() -> impl Strategy<Value = WireFrame> {
        (
            0u8..6,
            (any::<u32>(), any::<u64>(), any::<u64>(), any::<u16>()),
            arb_tuple(),
            (any::<u32>(), any::<bool>()),
            proptest::collection::vec(any::<u32>(), 0..12),
        )
            .prop_map(
                |(which, (host, seq, epoch, version), tuple, (retx, complete), links)| match which {
                    0 => WireFrame::Hello {
                        version,
                        host_lo: host,
                        host_hi: epoch as u32,
                    },
                    1 => WireFrame::Event(AgentEvent::FlowOpen {
                        host: HostId(host),
                        seq,
                        tuple,
                    }),
                    2 => WireFrame::Event(AgentEvent::Evidence {
                        seq,
                        report: TraceReport {
                            host: HostId(host),
                            tuple,
                            retransmissions: retx,
                            links: links.into_iter().map(LinkId).collect(),
                            complete,
                        },
                    }),
                    3 => WireFrame::Event(AgentEvent::EpochTick {
                        host: HostId(host),
                        seq,
                        epoch,
                    }),
                    4 => WireFrame::Event(AgentEvent::Drain {
                        host: HostId(host),
                        seq,
                    }),
                    _ => WireFrame::EpochDone { epoch },
                },
            )
    }

    proptest! {
        #[test]
        fn emit_parse_round_trip(frame in arb_frame()) {
            let mut buf = Vec::new();
            emit_frame(&frame, &mut buf);
            let (back, used) = parse_frame(&buf).unwrap();
            prop_assert_eq!(used, buf.len());
            prop_assert_eq!(back, frame);
        }

        #[test]
        fn every_truncation_is_truncated(frame in arb_frame(), frac in 0.0f64..1.0) {
            let mut buf = Vec::new();
            emit_frame(&frame, &mut buf);
            let cut = ((buf.len() as f64) * frac) as usize;
            prop_assert_eq!(parse_frame(&buf[..cut.min(buf.len() - 1)]).unwrap_err(),
                            FrameError::Truncated);
        }

        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = parse_frame(&bytes);
        }

        #[test]
        fn garbage_prefix_never_parses(mut bytes in proptest::collection::vec(any::<u8>(), 1..64),
                                       frame in arb_frame()) {
            // Force a non-magic first byte, then append a valid frame:
            // the parser must reject at the front, not resync silently.
            if bytes[0] == MAGIC[0] {
                bytes[0] = bytes[0].wrapping_add(1);
            }
            emit_frame(&frame, &mut bytes);
            prop_assert_eq!(parse_frame(&bytes).unwrap_err(), FrameError::BadMagic);
        }
    }
}
