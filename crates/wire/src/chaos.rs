//! Deterministic fault injection for the agent↔collector wire.
//!
//! A [`ChaosPlan`] decides every fault as a **pure function of `(seed,
//! key, index, axis)`** — no wall clock, no OS randomness — so the same
//! plan injects byte-for-byte identical faults whether the transport is
//! an in-process pipe, a loopback TCP socket, or a Unix socket, and a
//! failing soak run replays exactly from its seed. The axes mirror what
//! a production datacenter wire does to a long-lived monitoring
//! connection (PAPER.md §6): bit corruption, truncated sends,
//! duplicated sends, stalls, connection resets, and timed partitions
//! where reconnect attempts themselves are refused.
//!
//! [`ChaosWriter`] applies a plan to a frame sink. It sits directly
//! *under* [`FrameWriter`](crate::FrameWriter), whose contract is one
//! `write_all` per frame, so each `write` call the injector sees is
//! exactly one frame — faults are per-frame, indexed by a monotone
//! frame counter that the caller shares across reconnects (a replayed
//! frame draws a *fresh* index; otherwise a deterministic fault would
//! re-kill every replay forever).
//!
//! Resets are deliberately **not** a per-frame coin: with `F` frames per
//! epoch, a per-frame reset probability `p` survives a full epoch pass
//! with probability `(1-p)^F`, which for realistic `F` never completes —
//! a livelock, not chaos. Instead resets are *scheduled positions* on
//! the frame-index line: one reset inside each block of `reset_every`
//! frames, jittered within the first quarter of the block, so any two
//! resets are at least `3·reset_every/4` frames apart and progress
//! between them is guaranteed.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Splitmix64-style mixer: the single source of chaos randomness.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const AXIS_CORRUPT: u64 = 1;
const AXIS_TRUNCATE: u64 = 2;
const AXIS_DUPLICATE: u64 = 3;
const AXIS_DELAY: u64 = 4;
const AXIS_RESET: u64 = 5;
const AXIS_PARTITION: u64 = 6;
const AXIS_BYTE: u64 = 7;

/// A seeded, fully deterministic fault-injection plan.
///
/// All probabilities are per-frame coins except resets (scheduled
/// positions, see the module docs) and partitions (per-reconnect-storm
/// coins). The zero plan ([`ChaosPlan::quiet`]) injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Probability a frame has one byte XOR-corrupted.
    pub corrupt: f64,
    /// Probability a frame is truncated (a strict prefix is written).
    pub truncate: f64,
    /// Probability a frame is written twice back-to-back.
    pub duplicate: f64,
    /// Probability a frame is delayed by [`delay_ms`](Self::delay_ms).
    pub delay: f64,
    /// Stall applied when the delay coin lands.
    pub delay_ms: u64,
    /// One injected connection reset per `reset_every` frames
    /// (0 disables resets).
    pub reset_every: u64,
    /// Probability a reset escalates into a partition: the next
    /// [`partition_attempts`](Self::partition_attempts) reconnect
    /// attempts are refused before the wire heals.
    pub partition: f64,
    /// Refused reconnect attempts per partition.
    pub partition_attempts: u32,
}

impl ChaosPlan {
    /// The plan that injects nothing (all axes off).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            corrupt: 0.0,
            truncate: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            delay_ms: 0,
            reset_every: 0,
            partition: 0.0,
            partition_attempts: 0,
        }
    }

    /// True when no axis can fire.
    pub fn is_quiet(&self) -> bool {
        self.corrupt <= 0.0
            && self.truncate <= 0.0
            && self.duplicate <= 0.0
            && self.delay <= 0.0
            && self.reset_every == 0
    }

    /// A fair coin at probability `p` for `(key, index, axis)`.
    fn coin(&self, key: u64, index: u64, axis: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let h = mix(self.seed ^ mix(key ^ mix(index ^ axis.wrapping_mul(0x9e37))));
        // 53 uniform bits → [0,1)
        ((h >> 11) as f64) / ((1u64 << 53) as f64) < p
    }

    fn draw(&self, key: u64, index: u64, axis: u64) -> u64 {
        mix(self.seed ^ mix(key ^ mix(index ^ axis.wrapping_mul(0x9e37))))
    }

    /// True when frame `index` on stream `key` is a scheduled reset
    /// position: one per block of `reset_every`, jittered within the
    /// first quarter of the block.
    fn reset_at(&self, key: u64, index: u64) -> bool {
        if self.reset_every == 0 {
            return false;
        }
        let block = index / self.reset_every;
        let jitter_span = (self.reset_every / 4).max(1);
        let offset = self.draw(key, block, AXIS_RESET) % jitter_span;
        index == block * self.reset_every + offset
    }

    /// The ordinal of the reset block containing `index` (used to key
    /// partition decisions to "the n-th injected reset").
    fn reset_ordinal(&self, index: u64) -> u64 {
        if self.reset_every == 0 {
            0
        } else {
            index / self.reset_every
        }
    }

    /// The fault (if any) to apply to frame `index` of stream `key`,
    /// whose serialized form is `len` bytes.
    pub fn frame_fault(&self, key: u64, index: u64, len: usize) -> FrameFault {
        if self.reset_at(key, index) {
            return FrameFault::Reset {
                ordinal: self.reset_ordinal(index),
            };
        }
        if self.coin(key, index, AXIS_CORRUPT, self.corrupt) && len > 0 {
            let byte = (self.draw(key, index, AXIS_BYTE) as usize) % len;
            let mask = ((self.draw(key, index, AXIS_CORRUPT) >> 16) as u8) | 1;
            return FrameFault::Corrupt { byte, mask };
        }
        if self.coin(key, index, AXIS_TRUNCATE, self.truncate) && len > 1 {
            let keep = 1 + (self.draw(key, index, AXIS_TRUNCATE) as usize) % (len - 1);
            return FrameFault::Truncate { keep };
        }
        if self.coin(key, index, AXIS_DUPLICATE, self.duplicate) {
            return FrameFault::Duplicate;
        }
        if self.coin(key, index, AXIS_DELAY, self.delay) {
            return FrameFault::Delay { ms: self.delay_ms };
        }
        FrameFault::None
    }

    /// How many reconnect attempts a partition refuses after the reset
    /// with the given ordinal on stream `key` (0 = no partition).
    pub fn blocked_attempts(&self, key: u64, reset_ordinal: u64) -> u32 {
        if self.coin(key, reset_ordinal, AXIS_PARTITION, self.partition) {
            self.partition_attempts
        } else {
            0
        }
    }

    /// Parses a comma-separated chaos spec, e.g.
    /// `seed=7,corrupt=0.02,truncate=0.01,dup=0.02,delay=0.01:5,reset_every=900,partition=0.5:3`.
    /// Every field is optional; omitted axes stay off.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = ChaosPlan::quiet(0);
        for part in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec `{part}` is not key=value"))?;
            let (k, v) = (k.trim(), v.trim());
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("chaos {k}: `{v}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos {k}: probability {p} outside [0,1]"));
                }
                Ok(p)
            };
            match k {
                "seed" => {
                    plan.seed = v
                        .parse()
                        .map_err(|_| format!("chaos seed: `{v}` is not an integer"))?;
                }
                "corrupt" => plan.corrupt = prob(v)?,
                "truncate" => plan.truncate = prob(v)?,
                "dup" | "duplicate" => plan.duplicate = prob(v)?,
                "delay" => {
                    let (p, ms) = v
                        .split_once(':')
                        .ok_or_else(|| format!("chaos delay: `{v}` must be PROB:MS"))?;
                    plan.delay = prob(p)?;
                    plan.delay_ms = ms
                        .parse()
                        .map_err(|_| format!("chaos delay: `{ms}` is not a millisecond count"))?;
                }
                "reset_every" => {
                    plan.reset_every = v
                        .parse()
                        .map_err(|_| format!("chaos reset_every: `{v}` is not an integer"))?;
                }
                "partition" => {
                    let (p, n) = v
                        .split_once(':')
                        .ok_or_else(|| format!("chaos partition: `{v}` must be PROB:ATTEMPTS"))?;
                    plan.partition = prob(p)?;
                    plan.partition_attempts = n
                        .parse()
                        .map_err(|_| format!("chaos partition: `{n}` is not an attempt count"))?;
                }
                other => return Err(format!("unknown chaos axis `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// The fault a [`ChaosPlan`] chose for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Write the frame untouched.
    None,
    /// XOR `mask` (never zero) into the byte at `byte`.
    Corrupt {
        /// Offset of the corrupted byte within the frame.
        byte: usize,
        /// Non-zero XOR mask.
        mask: u8,
    },
    /// Write only the first `keep` bytes (a strict, non-empty prefix).
    Truncate {
        /// Bytes to keep.
        keep: usize,
    },
    /// Write the frame twice back-to-back.
    Duplicate,
    /// Sleep `ms` milliseconds, then write normally.
    Delay {
        /// Stall length.
        ms: u64,
    },
    /// Fail the write with `ConnectionReset` before any byte goes out.
    Reset {
        /// Ordinal of this scheduled reset (keys partition decisions).
        ordinal: u64,
    },
}

/// A chaos-escalation schedule: which plan applies from which epoch.
///
/// Phases are `(from_epoch, plan)` pairs; the plan with the largest
/// `from_epoch ≤ epoch` wins. Soak runs use this to start quiet and
/// escalate over time.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    phases: Vec<(u64, ChaosPlan)>,
}

impl ChaosSchedule {
    /// A single plan for every epoch.
    pub fn constant(plan: ChaosPlan) -> Self {
        Self {
            phases: vec![(0, plan)],
        }
    }

    /// Builds a schedule from `(from_epoch, plan)` phases. Phases are
    /// sorted by epoch; the earliest phase should start at 0 (epochs
    /// before the first phase fall back to a quiet plan).
    pub fn new(mut phases: Vec<(u64, ChaosPlan)>) -> Self {
        phases.sort_by_key(|(e, _)| *e);
        Self { phases }
    }

    /// The plan governing `epoch`.
    pub fn plan_for(&self, epoch: u64) -> ChaosPlan {
        let mut current = ChaosPlan::quiet(0);
        for (from, plan) in &self.phases {
            if *from <= epoch {
                current = *plan;
            } else {
                break;
            }
        }
        current
    }
}

/// A fault-injecting sink that treats **each `write` call as one
/// frame** — put it directly under a [`FrameWriter`](crate::FrameWriter)
/// (whose `write_frame` issues exactly one `write_all` per frame).
///
/// The frame index lives in a shared [`AtomicU64`] so a reconnecting
/// agent's replacement writer continues the same index line: replayed
/// frames draw fresh faults, and the scheduled-reset guarantee (at most
/// one reset per `reset_every` frames) spans reconnects.
#[derive(Debug)]
pub struct ChaosWriter<W> {
    inner: W,
    plan: Option<ChaosPlan>,
    key: u64,
    index: Arc<AtomicU64>,
    /// Set when an injected reset fires: the ordinal to feed
    /// [`ChaosPlan::blocked_attempts`] for partition simulation.
    last_reset_ordinal: Option<u64>,
    /// Reused by the corrupt fault so flipping one byte never allocates
    /// per frame — the same scratch discipline as `FrameWriter`.
    scratch: Vec<u8>,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner`; `key` identifies the stream (agents use their
    /// first host id) and `index` is the shared frame counter.
    pub fn new(inner: W, plan: Option<ChaosPlan>, key: u64, index: Arc<AtomicU64>) -> Self {
        Self {
            inner,
            plan,
            key,
            index,
            last_reset_ordinal: None,
            scratch: Vec::new(),
        }
    }

    /// Swaps the active plan (per-epoch escalation); `None` passes
    /// everything through untouched.
    pub fn set_plan(&mut self, plan: Option<ChaosPlan>) {
        self.plan = plan;
    }

    /// The ordinal of the most recent injected reset, consumed by the
    /// reconnect path to decide partition length.
    pub fn take_reset_ordinal(&mut self) -> Option<u64> {
        self.last_reset_ordinal.take()
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(plan) = self.plan else {
            self.inner.write_all(buf)?;
            return Ok(buf.len());
        };
        let index = self.index.fetch_add(1, Ordering::Relaxed);
        match plan.frame_fault(self.key, index, buf.len()) {
            FrameFault::None => self.inner.write_all(buf)?,
            FrameFault::Corrupt { byte, mask } => {
                self.scratch.clear();
                self.scratch.extend_from_slice(buf);
                let at = byte % self.scratch.len().max(1);
                self.scratch[at] ^= mask;
                self.inner.write_all(&self.scratch)?;
            }
            FrameFault::Truncate { keep } => {
                self.inner.write_all(&buf[..keep.min(buf.len())])?;
            }
            FrameFault::Duplicate => {
                self.inner.write_all(buf)?;
                self.inner.write_all(buf)?;
            }
            FrameFault::Delay { ms } => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                self.inner.write_all(buf)?;
            }
            FrameFault::Reset { ordinal } => {
                self.last_reset_ordinal = Some(ordinal);
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: injected connection reset",
                ));
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_plan() -> ChaosPlan {
        ChaosPlan {
            seed: 42,
            corrupt: 0.1,
            truncate: 0.05,
            duplicate: 0.1,
            delay: 0.0,
            delay_ms: 0,
            reset_every: 64,
            partition: 0.5,
            partition_attempts: 3,
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = busy_plan();
        for index in 0..512 {
            assert_eq!(
                plan.frame_fault(9, index, 40),
                plan.frame_fault(9, index, 40),
                "same (seed,key,index) must fault identically"
            );
        }
        // Different keys diverge somewhere.
        let diverges = (0..512).any(|i| plan.frame_fault(1, i, 40) != plan.frame_fault(2, i, 40));
        assert!(diverges, "keys must decorrelate streams");
    }

    #[test]
    fn resets_are_spaced_not_per_frame_coins() {
        let plan = busy_plan();
        let mut resets = Vec::new();
        for index in 0..(plan.reset_every * 16) {
            if let FrameFault::Reset { .. } = plan.frame_fault(5, index, 40) {
                resets.push(index);
            }
        }
        assert_eq!(
            resets.len() as u64,
            16,
            "exactly one reset per block of reset_every frames"
        );
        for pair in resets.windows(2) {
            assert!(
                pair[1] - pair[0] >= plan.reset_every * 3 / 4,
                "resets {pair:?} closer than the guaranteed gap"
            );
        }
    }

    #[test]
    fn quiet_plan_never_faults() {
        let plan = ChaosPlan::quiet(7);
        assert!(plan.is_quiet());
        for index in 0..4096 {
            assert_eq!(plan.frame_fault(0, index, 64), FrameFault::None);
        }
    }

    #[test]
    fn corrupt_fault_stays_in_bounds_and_flips() {
        let plan = ChaosPlan {
            corrupt: 1.0,
            ..ChaosPlan::quiet(3)
        };
        for index in 0..256 {
            match plan.frame_fault(1, index, 13) {
                FrameFault::Corrupt { byte, mask } => {
                    assert!(byte < 13);
                    assert_ne!(mask, 0, "a zero mask would be a no-op corruption");
                }
                other => panic!("expected corruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn spec_parses_every_axis() {
        let plan = ChaosPlan::parse(
            "seed=7,corrupt=0.02,truncate=0.01,dup=0.02,delay=0.01:5,reset_every=900,partition=0.5:3",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.corrupt, 0.02);
        assert_eq!(plan.truncate, 0.01);
        assert_eq!(plan.duplicate, 0.02);
        assert_eq!(plan.delay, 0.01);
        assert_eq!(plan.delay_ms, 5);
        assert_eq!(plan.reset_every, 900);
        assert_eq!(plan.partition, 0.5);
        assert_eq!(plan.partition_attempts, 3);

        assert!(
            ChaosPlan::parse("corrupt=2.0").is_err(),
            "prob > 1 rejected"
        );
        assert!(
            ChaosPlan::parse("warp=0.1").is_err(),
            "unknown axis rejected"
        );
        assert!(ChaosPlan::parse("delay=0.1").is_err(), "delay needs :MS");
        assert!(ChaosPlan::parse("").unwrap().is_quiet());
    }

    #[test]
    fn schedule_escalates_by_epoch() {
        let quiet = ChaosPlan::quiet(1);
        let rough = ChaosPlan {
            corrupt: 0.1,
            ..ChaosPlan::quiet(1)
        };
        let sched = ChaosSchedule::new(vec![(4, rough), (0, quiet)]);
        assert!(sched.plan_for(0).is_quiet());
        assert!(sched.plan_for(3).is_quiet());
        assert_eq!(sched.plan_for(4).corrupt, 0.1);
        assert_eq!(sched.plan_for(100).corrupt, 0.1);
    }

    #[test]
    fn writer_shares_index_across_instances() {
        // Two writers over the same index (a reconnect) must continue
        // the fault line, not restart it.
        let plan = ChaosPlan {
            reset_every: 8,
            ..ChaosPlan::quiet(11)
        };
        let index = Arc::new(AtomicU64::new(0));
        let mut hits = 0;
        let mut sink = Vec::new();
        {
            let mut w = ChaosWriter::new(&mut sink, Some(plan), 1, Arc::clone(&index));
            for _ in 0..12 {
                if w.write(b"frame").is_err() {
                    hits += 1;
                }
            }
        }
        {
            let mut w = ChaosWriter::new(&mut sink, Some(plan), 1, Arc::clone(&index));
            for _ in 0..12 {
                if w.write(b"frame").is_err() {
                    hits += 1;
                }
            }
        }
        assert_eq!(index.load(Ordering::Relaxed), 24);
        assert_eq!(hits, 3, "24 frames over reset_every=8 → 3 scheduled resets");
    }
}
