//! Adversarial byte-stream tests for the frame codec: whatever the
//! wire delivers — arbitrary split points, truncation, flipped
//! magic/version/length/kind bytes, interleaved garbage — the decoder
//! must return a typed error (never panic, never read past the claimed
//! frame), and the lenient reader must resynchronize onto the clean
//! frames that follow a quarantined one.

use std::io::{self, Read};

use proptest::prelude::*;
use vigil_agents::{AgentEvent, TraceReport};
use vigil_packet::{FiveTuple, Protocol};
use vigil_topology::{HostId, LinkId};
use vigil_wire::{emit_frame, parse_frame, FrameError, FrameReader, WireFrame, WIRE_VERSION};

fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<bool>(),
    )
        .prop_map(|(src, dst, sp, dp, udp)| FiveTuple {
            src_ip: std::net::Ipv4Addr::from(src.to_be_bytes()),
            dst_ip: std::net::Ipv4Addr::from(dst.to_be_bytes()),
            src_port: sp,
            dst_port: dp,
            protocol: if udp { Protocol::Udp } else { Protocol::Tcp },
        })
}

/// Every frame variant from one selector draw (the vendored proptest
/// has no `prop_oneof!`).
fn arb_frame() -> impl Strategy<Value = WireFrame> {
    (
        0u8..8,
        (any::<u32>(), any::<u64>(), any::<u64>()),
        arb_tuple(),
        proptest::collection::vec(any::<u32>(), 0..8),
    )
        .prop_map(|(which, (host, seq, epoch), tuple, links)| match which {
            0 => WireFrame::Hello {
                version: WIRE_VERSION,
                flags: (seq % 251) as u8,
                host_lo: host,
                host_hi: host.wrapping_add(16),
            },
            1 => WireFrame::Event(AgentEvent::FlowOpen {
                host: HostId(host),
                seq,
                tuple,
            }),
            2 => WireFrame::Event(AgentEvent::Evidence {
                seq,
                report: TraceReport {
                    host: HostId(host),
                    tuple,
                    retransmissions: host ^ 3,
                    links: links.into_iter().map(LinkId).collect(),
                    complete: seq % 2 == 0,
                },
            }),
            3 => WireFrame::Event(AgentEvent::EpochTick {
                host: HostId(host),
                seq,
                epoch,
            }),
            4 => WireFrame::Event(AgentEvent::Drain {
                host: HostId(host),
                seq,
            }),
            5 => WireFrame::EpochDone { epoch, events: seq },
            6 => WireFrame::ResumeAt { epoch },
            _ => WireFrame::Heartbeat,
        })
}

/// A reader that delivers its bytes in caller-chosen chunk sizes,
/// exercising every reassembly path in `FrameReader`.
struct Chopped {
    data: Vec<u8>,
    cuts: Vec<usize>,
    at: usize,
    turn: usize,
}

impl Read for Chopped {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.at >= self.data.len() {
            return Ok(0);
        }
        let want = 1 + self.cuts[self.turn % self.cuts.len()] % 97;
        self.turn += 1;
        let n = want.min(out.len()).min(self.data.len() - self.at);
        out[..n].copy_from_slice(&self.data[self.at..self.at + n]);
        self.at += n;
        Ok(n)
    }
}

proptest! {
    /// Whatever bytes arrive, parse_frame returns a typed result and a
    /// consumed length that never exceeds the buffer.
    #[test]
    fn decoder_never_panics_or_overreads(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok((_, used)) = parse_frame(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    /// A stream of valid frames survives arbitrary read-chunk splits.
    #[test]
    fn any_split_points_reassemble(
        frames in proptest::collection::vec(arb_frame(), 1..8),
        cuts in proptest::collection::vec(any::<usize>(), 1..16),
    ) {
        let mut data = Vec::new();
        for f in &frames {
            emit_frame(f, &mut data);
        }
        let mut reader = FrameReader::new(Chopped { data, cuts, at: 0, turn: 0 });
        let mut out = Vec::new();
        while let Some(f) = reader.next_frame().unwrap() {
            out.push(f);
        }
        prop_assert_eq!(out, frames);
    }

    /// Flipping any single byte of a frame makes the strict parser
    /// reject it with a typed error — checksum, magic, or framing.
    #[test]
    fn any_flipped_byte_is_rejected(frame in arb_frame(), at in any::<usize>(), mask in 1u8..=255) {
        let mut buf = Vec::new();
        emit_frame(&frame, &mut buf);
        let at = at % buf.len();
        buf[at] ^= mask;
        match parse_frame(&buf) {
            Err(FrameError::BadChecksum)
            | Err(FrameError::BadMagic)
            | Err(FrameError::Malformed)
            | Err(FrameError::UnknownKind(_)) => {}
            // A corrupted length field may claim more bytes than we
            // hold; a blocking reader would then stall until the
            // checksum unmasks it — still never a wrong frame.
            Err(FrameError::Truncated) => {}
            Ok(_) => prop_assert!(false, "flipped byte {at} (mask {mask:#x}) parsed as valid"),
        }
    }

    /// A truncated frame is always Truncated — the parser never
    /// fabricates a frame from a prefix.
    #[test]
    fn every_prefix_is_truncated(frame in arb_frame(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        emit_frame(&frame, &mut buf);
        let cut = (((buf.len() - 1) as f64) * frac) as usize;
        prop_assert_eq!(parse_frame(&buf[..cut]).unwrap_err(), FrameError::Truncated);
    }

    /// The lenient reader recovers after a quarantined frame: corrupt
    /// one mid-stream frame and the frames after it still come through
    /// in order (the result is a subsequence of what was sent).
    #[test]
    fn lenient_reader_resynchronizes(
        frames in proptest::collection::vec(arb_frame(), 3..10),
        victim_sel in any::<usize>(),
        at in any::<usize>(),
        mask in 1u8..=255,
        garbage in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        // Corrupt one interior frame and splice garbage after it.
        let victim = victim_sel % (frames.len() - 2) + 1;
        let mut data = Vec::new();
        let mut marks = Vec::new();
        for f in &frames {
            let start = data.len();
            emit_frame(f, &mut data);
            marks.push((start, data.len()));
        }
        let (vs, ve) = marks[victim];
        let at = vs + at % (ve - vs);
        data[at] ^= mask;
        data.splice(ve..ve, garbage.iter().copied());

        let mut reader = FrameReader::new(io::Cursor::new(data));
        let mut out = Vec::new();
        loop {
            match reader.next_frame_lenient() {
                Ok(Some(f)) => out.push(f),
                Ok(None) => break,
                // A corrupted length field can swallow the stream tail;
                // mid-frame EOF is the documented escape hatch.
                Err(e) => {
                    prop_assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
                    break;
                }
            }
        }
        // Everything decoded must be a subsequence of what was sent —
        // resync may drop frames, it must never invent or reorder them.
        let mut cursor = 0;
        for f in &out {
            let found = frames[cursor..].iter().position(|s| s == f);
            prop_assert!(found.is_some(), "decoded frame not in sent order: {f:?}");
            cursor += found.unwrap() + 1;
        }
        // Frames strictly before the victim always survive.
        prop_assert!(out.len() >= victim, "lost frames that preceded the corruption");
        prop_assert_eq!(&out[..victim], &frames[..victim]);
    }
}
