//! Byzantine-voter properties of the democratic tally (the analysis-side
//! guarantees behind the `byzantine/*` scenario axis).
//!
//! Each property is constructive: it builds an evidence pool where the
//! adversary's strength is bounded by an explicit margin, then asserts
//! the tally + Algorithm 1 hold the honest verdict. The margins mirror
//! Theorem 2's separation argument — a bad link's vote mass exceeds any
//! good link's with probability `1 - ε` because each victim flow casts
//! equal `1/h` mass — reduced to its combinatorial core: with every path
//! the same length, vote order *is* voter-count order, so "k liars cannot
//! outrank a link with more than k honest victims" is exact, not
//! probabilistic.
//!
//! 1. **Liar margin**: k lying voters, each minting one fake-path flow,
//!    never push a fabricated link above any true link backed by more
//!    than k honest flows — the true links occupy the top ranks and the
//!    first picks of Algorithm 1.
//! 2. **Mute monotonicity**: silent voters only remove evidence, so the
//!    detection set can only shrink (recall loss) and never gains a
//!    false positive (accuracy is untouched).
//! 3. **Flooder threshold**: spurious evidence spread over healthy links
//!    never mints a detection while each healthy link's flood mass stays
//!    below the conservative (fixed-base) threshold bar — the same bar
//!    the noise classifier's first-pass detection uses. The construction
//!    grants the flooder its strongest position: none of its flows are
//!    assumed caught by the upstream noise filter.

use proptest::prelude::*;
use vigil_analysis::{detect, Algorithm1Config, FlowEvidence, ThresholdBase, VoteWeight};
use vigil_topology::LinkId;

/// Builds a 3-hop flow: the link under test plus two globally unique
/// filler links. Equal path lengths make `1/h` votes rank by voter
/// count; unique fillers keep every filler below the voter quorum.
fn flow_through(link: u32, filler: &mut u32) -> FlowEvidence {
    let a = *filler;
    *filler += 2;
    FlowEvidence::new(vec![LinkId(link), LinkId(a), LinkId(a + 1)], 2)
}

fn cfg() -> Algorithm1Config {
    Algorithm1Config::default()
}

proptest! {
    /// With `k` liars among the voters — each emitting one flow whose
    /// fabricated path blames fake links — every true link backed by
    /// more than `k` honest flows strictly outranks every fabricated
    /// link, in both the raw tally ranking and Algorithm 1's pick order.
    #[test]
    fn liars_below_the_margin_never_outrank_true_links(
        honest in proptest::collection::vec(2u32..12, 1..4),
        k_raw in 0u32..64,
        fake_choice in proptest::collection::vec(0usize..5, 1..16),
    ) {
        let n_true = honest.len() as u32;
        let min_honest = *honest.iter().min().unwrap();
        // The margin: strictly fewer liar flows than any true link's
        // honest backing. (Each liar mints one flow per epoch, exactly
        // as the Liar adversary does per retransmitting flow.)
        let k = (k_raw % min_honest) as usize;
        let n_fake = 5u32;
        let mut filler = n_true + n_fake;

        let mut evidence = Vec::new();
        for (i, &count) in honest.iter().enumerate() {
            for _ in 0..count {
                evidence.push(flow_through(i as u32, &mut filler));
            }
        }
        for j in 0..k {
            let fake = n_true + fake_choice[j % fake_choice.len()] as u32;
            evidence.push(flow_through(fake, &mut filler));
        }

        let num_links = filler as usize;
        let out = detect(&evidence, num_links, &cfg());

        // Raw ranking: the top `n_true` entries are exactly the true
        // links — no fabricated link intrudes on the top ranks.
        let ranking = out.raw_tally.ranking();
        let top: Vec<u32> = ranking[..n_true as usize]
            .iter()
            .map(|(l, _)| l.0)
            .collect();
        for i in 0..n_true {
            prop_assert!(
                top.contains(&i),
                "true link {i} pushed out of the top ranks by liars (k={k}): {top:?}"
            );
        }
        // And strictly: the weakest true link out-votes the strongest
        // impostor (margin > 0 by construction).
        let weakest_true = (0..n_true)
            .map(|i| out.raw_tally.votes(LinkId(i)))
            .fold(f64::INFINITY, f64::min);
        let strongest_fake = (n_true..n_true + n_fake)
            .map(|i| out.raw_tally.votes(LinkId(i)))
            .fold(0.0, f64::max);
        prop_assert!(
            weakest_true > strongest_fake,
            "margin violated: weakest true {weakest_true} vs strongest fake {strongest_fake}"
        );

        // Algorithm 1 picks the true links first, before any liar-backed
        // link can be considered.
        let first_picks: Vec<u32> = out
            .detections
            .iter()
            .take(n_true as usize)
            .map(|d| d.link.0)
            .collect();
        prop_assert_eq!(first_picks.len(), n_true as usize);
        for i in 0..n_true {
            prop_assert!(
                first_picks.contains(&i),
                "true link {} not among the first picks: {:?}",
                i,
                first_picks
            );
        }
    }

    /// Mute hosts withhold their evidence. Over disjoint per-link
    /// evidence, that can only shrink the detection set (recall), never
    /// add to it (accuracy): the muted run's detections stay a subset of
    /// both the honest run's detections and the true links.
    #[test]
    fn mute_hosts_only_reduce_recall_never_accuracy(
        honest in proptest::collection::vec(1u32..8, 1..5),
        mute in proptest::collection::vec(proptest::any::<bool>(), 1..40),
    ) {
        let n_true = honest.len() as u32;
        let mut filler = n_true;
        let mut evidence = Vec::new();
        for (i, &count) in honest.iter().enumerate() {
            for _ in 0..count {
                evidence.push(flow_through(i as u32, &mut filler));
            }
        }
        let num_links = filler as usize;

        let surviving: Vec<FlowEvidence> = evidence
            .iter()
            .enumerate()
            .filter(|(i, _)| !mute[i % mute.len()])
            .map(|(_, e)| e.clone())
            .collect();

        let full = detect(&evidence, num_links, &cfg());
        let muted = detect(&surviving, num_links, &cfg());

        let full_set: Vec<u32> = full.detections.iter().map(|d| d.link.0).collect();
        let muted_set: Vec<u32> = muted.detections.iter().map(|d| d.link.0).collect();

        // Accuracy: neither run ever blames a link no honest flow voted
        // for (fillers are below the voter quorum by construction).
        for l in full_set.iter().chain(&muted_set) {
            prop_assert!(*l < n_true, "false positive {l} minted by silence");
        }
        // Recall monotonicity: removing voters can only lose detections.
        for l in &muted_set {
            prop_assert!(
                full_set.contains(l),
                "muting voters minted detection {l} absent from the honest run"
            );
        }
        prop_assert!(muted_set.len() <= full_set.len());
    }

    /// A flooder spreads spurious flows over healthy links. While each
    /// healthy link's flood mass stays below the conservative threshold
    /// bar (`threshold_frac` of the epoch's initial vote total — the
    /// fixed base the noise classifier's first-pass detection uses), no
    /// flooded link is ever detected: detections remain within the true
    /// failed set.
    #[test]
    fn flood_below_the_bar_never_mints_a_false_positive(
        honest in proptest::collection::vec(15u32..25, 3..6),
        flood_raw in proptest::collection::vec(0u32..8, 1..6),
    ) {
        let n_true = honest.len() as u32;
        let n_flood = flood_raw.len() as u32;
        let total_honest: u32 = honest.iter().sum();
        // Every flow contributes total mass 1.0 (h links × 1/h), so the
        // initial total is at least `total_honest` and the bar at least
        // `0.01 · total_honest`. A flooded link's mass is `f/3` (3-hop
        // paths), so capping `f` at `floor(0.03 · total_honest)` keeps
        // every flooded link strictly under the bar.
        let cap = (0.03 * total_honest as f64).floor() as u32;
        let flood: Vec<u32> = flood_raw.iter().map(|f| (*f).min(cap)).collect();

        let mut filler = n_true + n_flood;
        let mut evidence = Vec::new();
        for (i, &count) in honest.iter().enumerate() {
            for _ in 0..count {
                evidence.push(flow_through(i as u32, &mut filler));
            }
        }
        for (j, &count) in flood.iter().enumerate() {
            for _ in 0..count {
                evidence.push(flow_through(n_true + j as u32, &mut filler));
            }
        }
        let num_links = filler as usize;

        let out = detect(
            &evidence,
            num_links,
            &Algorithm1Config {
                threshold_base: ThresholdBase::Initial,
                weight: VoteWeight::ReciprocalPathLength,
                ..cfg()
            },
        );

        let detected: Vec<u32> = out.detections.iter().map(|d| d.link.0).collect();
        for l in &detected {
            prop_assert!(
                *l < n_true,
                "flooded healthy link {} detected below the bar \
                 (flood mass {:?}, honest {:?})",
                l,
                flood,
                honest
            );
        }
        // The flood never drowns the true links either: every genuinely
        // failed link still clears the bar.
        for i in 0..n_true {
            prop_assert!(
                detected.contains(&i),
                "true link {i} lost to flood dilution: {detected:?}"
            );
        }
    }
}
