//! Float-drift guard for the incremental vote machinery: casting a
//! random batch of evidence and then retracting all of it — under *any*
//! interleaving of casts and retracts — must return the [`VoteTally`]
//! (and the [`VoteLedger`] built on it) **bitwise** to its prior (empty)
//! state. This is the property that makes a long-running ledger safe:
//! absorbed-then-withdrawn evidence may never leave residue that later
//! masquerades as votes, however the operations interleave.
//!
//! The guarantee rests on two mechanisms in `VoteTally::retract`: the
//! clamp (`removed = w.min(v)`) zeroes exactly when float error went
//! negative, and the `1e-12` snap absorbs positive dust. The proptests
//! drive both through randomized paths and shrink to a minimal failing
//! batch on regression.

use proptest::prelude::*;
use vigil_analysis::ledger::VoteLedger;
use vigil_analysis::{Algorithm1Config, FlowEvidence, VoteTally, VoteWeight};
use vigil_topology::LinkId;

const NUM_LINKS: usize = 24;

fn evidence_from(paths: &[Vec<u32>]) -> Vec<FlowEvidence> {
    paths
        .iter()
        .map(|p| {
            // Dedupe within a path: a flow votes each of its links once.
            let mut q = p.clone();
            q.sort_unstable();
            q.dedup();
            FlowEvidence::new(q.into_iter().map(LinkId).collect(), 1)
        })
        .collect()
}

fn tally_bits(t: &VoteTally) -> Vec<u64> {
    let mut bits: Vec<u64> = (0..t.num_links())
        .map(|i| t.votes(LinkId(i as u32)).to_bits())
        .collect();
    bits.push(t.total().to_bits());
    bits
}

/// Interleaves casts and retracts: `order[i]` decides whether step `i`
/// casts the next un-cast evidence or retracts the oldest cast-but-not-
/// yet-retracted one; any retract that cannot happen yet (nothing cast)
/// becomes a cast, and leftovers are flushed at the end — so every
/// schedule is valid and everything is retracted exactly once.
fn run_interleaved(
    tally: &mut VoteTally,
    evidence: &[FlowEvidence],
    order: &[bool],
    weight: VoteWeight,
) {
    let mut next_cast = 0usize;
    let mut next_retract = 0usize;
    for &do_retract in order {
        if do_retract && next_retract < next_cast {
            tally.retract(&evidence[next_retract], weight);
            next_retract += 1;
        } else if next_cast < evidence.len() {
            tally.cast(&evidence[next_cast], weight);
            next_cast += 1;
        }
    }
    while next_cast < evidence.len() {
        tally.cast(&evidence[next_cast], weight);
        next_cast += 1;
    }
    while next_retract < next_cast {
        tally.retract(&evidence[next_retract], weight);
        next_retract += 1;
    }
}

proptest! {
    #[test]
    fn cast_then_retract_restores_tally_bitwise(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..NUM_LINKS as u32, 1..7), 1..30),
        order in proptest::collection::vec(proptest::any::<bool>(), 0..60),
    ) {
        let evidence = evidence_from(&paths);
        for weight in [
            VoteWeight::ReciprocalPathLength,
            VoteWeight::Unit,
            VoteWeight::ReciprocalSquared,
        ] {
            let fresh = VoteTally::new(NUM_LINKS);
            let prior = tally_bits(&fresh);
            let mut tally = VoteTally::new(NUM_LINKS);
            run_interleaved(&mut tally, &evidence, &order, weight);
            prop_assert_eq!(
                tally_bits(&tally),
                prior.clone(),
                "residue after full retraction ({:?})",
                weight
            );
        }
    }

    #[test]
    fn absorb_then_retract_restores_ledger_bitwise(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..NUM_LINKS as u32, 1..7), 1..30),
        order in proptest::collection::vec(proptest::any::<bool>(), 0..60),
    ) {
        let evidence = evidence_from(&paths);
        let mut ledger: VoteLedger<u32> =
            VoteLedger::new(NUM_LINKS, Algorithm1Config::default(), 2, 0.3);
        let prior = tally_bits(ledger.live_tally());

        // The same interleaving discipline, through the ledger's
        // absorb/retract (keys are the batch indices).
        let mut next_absorb = 0usize;
        let mut next_retract = 0usize;
        for &do_retract in &order {
            if do_retract && next_retract < next_absorb {
                let got = ledger.retract(&(next_retract as u32));
                prop_assert!(got.is_some(), "absorbed key must retract");
                next_retract += 1;
            } else if next_absorb < evidence.len() {
                ledger.absorb(next_absorb as u32, evidence[next_absorb].clone());
                next_absorb += 1;
            }
        }
        while next_absorb < evidence.len() {
            ledger.absorb(next_absorb as u32, evidence[next_absorb].clone());
            next_absorb += 1;
        }
        while next_retract < next_absorb {
            let got = ledger.retract(&(next_retract as u32));
            prop_assert!(got.is_some());
            next_retract += 1;
        }

        prop_assert_eq!(ledger.resident(), 0, "window must be empty again");
        prop_assert_eq!(tally_bits(ledger.live_tally()), prior,
            "ledger live tally holds residue after full retraction");
    }
}
