//! Float-drift guard for the incremental vote machinery: casting a
//! random batch of evidence and then retracting all of it — under *any*
//! interleaving of casts and retracts — must return the [`VoteTally`]
//! (and the [`VoteLedger`] built on it) **bitwise** to its prior (empty)
//! state. This is the property that makes a long-running ledger safe:
//! absorbed-then-withdrawn evidence may never leave residue that later
//! masquerades as votes, however the operations interleave.
//!
//! The guarantee rests on two mechanisms in `VoteTally::retract`: the
//! clamp (`removed = w.min(v)`) zeroes exactly when float error went
//! negative, and the `1e-12` snap absorbs positive dust. The proptests
//! drive both through randomized paths and shrink to a minimal failing
//! batch on regression.

use proptest::prelude::*;
use vigil_analysis::ledger::{ShardedVoteLedger, VoteLedger};
use vigil_analysis::{Algorithm1Config, FlowEvidence, VoteTally, VoteWeight};
use vigil_topology::LinkId;

const NUM_LINKS: usize = 24;

fn evidence_from(paths: &[Vec<u32>]) -> Vec<FlowEvidence> {
    paths
        .iter()
        .map(|p| {
            // Dedupe within a path: a flow votes each of its links once.
            let mut q = p.clone();
            q.sort_unstable();
            q.dedup();
            FlowEvidence::new(q.into_iter().map(LinkId).collect(), 1)
        })
        .collect()
}

fn tally_bits(t: &VoteTally) -> Vec<u64> {
    let mut bits: Vec<u64> = (0..t.num_links())
        .map(|i| t.votes(LinkId(i as u32)).to_bits())
        .collect();
    bits.push(t.total().to_bits());
    bits
}

/// Interleaves casts and retracts: `order[i]` decides whether step `i`
/// casts the next un-cast evidence or retracts the oldest cast-but-not-
/// yet-retracted one; any retract that cannot happen yet (nothing cast)
/// becomes a cast, and leftovers are flushed at the end — so every
/// schedule is valid and everything is retracted exactly once.
fn run_interleaved(
    tally: &mut VoteTally,
    evidence: &[FlowEvidence],
    order: &[bool],
    weight: VoteWeight,
) {
    let mut next_cast = 0usize;
    let mut next_retract = 0usize;
    for &do_retract in order {
        if do_retract && next_retract < next_cast {
            tally.retract(&evidence[next_retract], weight);
            next_retract += 1;
        } else if next_cast < evidence.len() {
            tally.cast(&evidence[next_cast], weight);
            next_cast += 1;
        }
    }
    while next_cast < evidence.len() {
        tally.cast(&evidence[next_cast], weight);
        next_cast += 1;
    }
    while next_retract < next_cast {
        tally.retract(&evidence[next_retract], weight);
        next_retract += 1;
    }
}

proptest! {
    #[test]
    fn cast_then_retract_restores_tally_bitwise(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..NUM_LINKS as u32, 1..7), 1..30),
        order in proptest::collection::vec(proptest::any::<bool>(), 0..60),
    ) {
        let evidence = evidence_from(&paths);
        for weight in [
            VoteWeight::ReciprocalPathLength,
            VoteWeight::Unit,
            VoteWeight::ReciprocalSquared,
        ] {
            let fresh = VoteTally::new(NUM_LINKS);
            let prior = tally_bits(&fresh);
            let mut tally = VoteTally::new(NUM_LINKS);
            run_interleaved(&mut tally, &evidence, &order, weight);
            prop_assert_eq!(
                tally_bits(&tally),
                prior.clone(),
                "residue after full retraction ({:?})",
                weight
            );
        }
    }

    #[test]
    fn absorb_then_retract_restores_ledger_bitwise(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..NUM_LINKS as u32, 1..7), 1..30),
        order in proptest::collection::vec(proptest::any::<bool>(), 0..60),
    ) {
        let evidence = evidence_from(&paths);
        let mut ledger: VoteLedger<u32> =
            VoteLedger::new(NUM_LINKS, Algorithm1Config::default(), 2, 0.3);
        let prior = tally_bits(ledger.live_tally());

        // The same interleaving discipline, through the ledger's
        // absorb/retract (keys are the batch indices).
        let mut next_absorb = 0usize;
        let mut next_retract = 0usize;
        for &do_retract in &order {
            if do_retract && next_retract < next_absorb {
                let got = ledger.retract(&(next_retract as u32));
                prop_assert!(got.is_some(), "absorbed key must retract");
                next_retract += 1;
            } else if next_absorb < evidence.len() {
                ledger.absorb(next_absorb as u32, evidence[next_absorb].clone());
                next_absorb += 1;
            }
        }
        while next_absorb < evidence.len() {
            ledger.absorb(next_absorb as u32, evidence[next_absorb].clone());
            next_absorb += 1;
        }
        while next_retract < next_absorb {
            let got = ledger.retract(&(next_retract as u32));
            prop_assert!(got.is_some());
            next_retract += 1;
        }

        prop_assert_eq!(ledger.resident(), 0, "window must be empty again");
        prop_assert_eq!(tally_bits(ledger.live_tally()), prior,
            "ledger live tally holds residue after full retraction");
    }

    #[test]
    fn sharded_close_matches_unsharded_bitwise(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..NUM_LINKS as u32, 1..7), 1..40),
        shards in 1usize..8,
        perm_seed in proptest::any::<u64>(),
        dup_every in 2usize..6,
    ) {
        // The sharding contract: partition the evidence any way (here by
        // link range, the production router), absorb each partition in a
        // scrambled order, merge, close — the WindowAnalysis must be
        // bitwise-identical to one ledger absorbing everything, including
        // re-absorptions (every `dup_every`-th key is absorbed twice with
        // bumped retransmissions; the router keeps supersede shard-local).
        let evidence = evidence_from(&paths);
        let cfg = Algorithm1Config::default();

        // Reference: one unsharded ledger, canonical key order.
        let mut flat: VoteLedger<u32> = VoteLedger::new(NUM_LINKS, cfg, 2, 0.3);
        for (k, e) in evidence.iter().enumerate() {
            flat.absorb(k as u32, e.clone());
            if k % dup_every == 0 {
                let mut newer = e.clone();
                newer.retransmissions += 1;
                flat.absorb(k as u32, newer);
            }
        }
        let flat_robust = flat.robustness();
        let flat_win = flat.close_window();

        // Sharded: same items, arbitrary interleaving (a cheap LCG
        // permutation seeded by proptest), routed through the link-range
        // router.
        let mut sharded: ShardedVoteLedger<u32> =
            ShardedVoteLedger::new(shards, NUM_LINKS, cfg, 2, 0.3);
        let mut order: Vec<usize> = (0..evidence.len()).collect();
        let mut state = perm_seed;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        for &k in &order {
            sharded.absorb(k as u32, evidence[k].clone());
            if k % dup_every == 0 {
                let mut newer = evidence[k].clone();
                newer.retransmissions += 1;
                sharded.absorb(k as u32, newer);
            }
        }
        prop_assert_eq!(sharded.robustness(), flat_robust);
        let shard_win = sharded.close_window();

        prop_assert_eq!(&shard_win.evidence, &flat_win.evidence,
            "sharding changed the canonical evidence");
        prop_assert_eq!(
            tally_bits(&shard_win.detection.raw_tally),
            tally_bits(&flat_win.detection.raw_tally));
        prop_assert_eq!(
            tally_bits(&shard_win.conservative.raw_tally),
            tally_bits(&flat_win.conservative.raw_tally));
        prop_assert_eq!(shard_win.detection.detected_links(),
            flat_win.detection.detected_links());
        prop_assert_eq!(&shard_win.classes, &flat_win.classes);
        prop_assert_eq!(shard_win.unbounded_picks, flat_win.unbounded_picks);
        prop_assert_eq!(sharded.robustness(), flat.robustness());
        prop_assert_eq!(sharded.resident(), 0);
    }

    #[test]
    fn worker_assigned_shards_close_like_link_routed_shards(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..NUM_LINKS as u32, 1..7), 1..30),
        shards in 1usize..6,
    ) {
        // Workers don't have to use the link router: any key-disjoint
        // assignment (here round-robin by key through `shards_mut`, the
        // pool's one-shard-per-worker pattern) closes identically.
        let evidence = evidence_from(&paths);
        let cfg = Algorithm1Config::default();

        let mut flat: VoteLedger<u32> = VoteLedger::new(NUM_LINKS, cfg, 2, 0.3);
        for (k, e) in evidence.iter().enumerate() {
            flat.absorb(k as u32, e.clone());
        }
        let flat_win = flat.close_window();

        let mut sharded: ShardedVoteLedger<u32> =
            ShardedVoteLedger::new(shards, NUM_LINKS, cfg, 2, 0.3);
        {
            let mut shard_refs: Vec<&mut VoteLedger<u32>> = sharded.shards_mut().collect();
            let n = shard_refs.len();
            for (k, e) in evidence.iter().enumerate() {
                shard_refs[k % n].absorb(k as u32, e.clone());
            }
        }
        let shard_win = sharded.close_window();
        prop_assert_eq!(&shard_win.evidence, &flat_win.evidence);
        prop_assert_eq!(
            tally_bits(&shard_win.detection.raw_tally),
            tally_bits(&flat_win.detection.raw_tally));
        prop_assert_eq!(shard_win.detection.detected_links(),
            flat_win.detection.detected_links());
        prop_assert_eq!(&shard_win.classes, &flat_win.classes);
    }
}
