//! Switch-level voting (the §5.1 extension).
//!
//! "007 can also be used to detect switch failures in a similar fashion
//! by applying votes to switches instead of links." A flow's vote of
//! `1/s` goes to each of the `s` distinct switches on its path; a switch
//! that drops packets on many of its interfaces (FCS errors after a power
//! event, a bad forwarding ASIC, the §7.1 repaved-cluster ToR) then
//! outranks any single link.

use crate::evidence::FlowEvidence;
use serde::{Deserialize, Serialize};
use vigil_topology::{ClosTopology, Node, SwitchId};

/// Dense per-switch vote tally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchTally {
    votes: Vec<f64>,
}

impl SwitchTally {
    /// An empty tally over the topology's switches.
    pub fn new(num_switches: usize) -> Self {
        Self {
            votes: vec![0.0; num_switches],
        }
    }

    /// Tallies evidence: each flow votes `1/s` on each distinct switch
    /// its links touch (link endpoints that are switches).
    pub fn tally(topo: &ClosTopology, evidence: &[FlowEvidence]) -> Self {
        let mut t = Self::new(topo.num_switches());
        for e in evidence {
            let mut switches: Vec<SwitchId> = Vec::with_capacity(e.links.len() + 1);
            for l in &e.links {
                let link = topo.link(*l);
                for node in [link.from, link.to] {
                    if let Node::Switch(s) = node {
                        if !switches.contains(&s) {
                            switches.push(s);
                        }
                    }
                }
            }
            if switches.is_empty() {
                continue;
            }
            let w = 1.0 / switches.len() as f64;
            for s in switches {
                t.votes[s.0 as usize] += w;
            }
        }
        t
    }

    /// A switch's votes.
    pub fn votes(&self, switch: SwitchId) -> f64 {
        self.votes[switch.0 as usize]
    }

    /// Ranking, descending (ties by id), zero-vote switches omitted.
    pub fn ranking(&self) -> Vec<(SwitchId, f64)> {
        let mut v: Vec<(SwitchId, f64)> = self
            .votes
            .iter()
            .enumerate()
            .filter(|(_, v)| **v > 0.0)
            .map(|(i, v)| (SwitchId(i as u32), *v))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        v
    }

    /// Sum of votes over all switches.
    pub fn total(&self) -> f64 {
        self.votes.iter().sum()
    }
}

/// A detected switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchDetection {
    /// The switch.
    pub switch: SwitchId,
    /// Its votes when picked.
    pub votes: f64,
}

/// Algorithm 1 transplanted to switches: iteratively take the most-voted
/// switch, retract the flows it explains (any flow whose path touches
/// it), stop at `threshold_frac` of the running total — "007 can also be
/// used to detect switch failures in a similar fashion by applying votes
/// to switches instead of links" (§5.1).
pub fn detect_switches(
    topo: &ClosTopology,
    evidence: &[FlowEvidence],
    threshold_frac: f64,
) -> Vec<SwitchDetection> {
    // Per-flow distinct switch sets, computed once.
    let switch_sets: Vec<Vec<SwitchId>> = evidence
        .iter()
        .map(|e| {
            let mut switches = Vec::new();
            for l in &e.links {
                let link = topo.link(*l);
                for node in [link.from, link.to] {
                    if let Node::Switch(s) = node {
                        if !switches.contains(&s) {
                            switches.push(s);
                        }
                    }
                }
            }
            switches
        })
        .collect();

    let mut votes = vec![0.0f64; topo.num_switches()];
    for set in &switch_sets {
        if set.is_empty() {
            continue;
        }
        let w = 1.0 / set.len() as f64;
        for s in set {
            votes[s.0 as usize] += w;
        }
    }

    let mut explained = vec![false; evidence.len()];
    let mut detected: Vec<SwitchDetection> = Vec::new();
    loop {
        let total: f64 = votes.iter().sum();
        let Some((idx, &v)) = votes
            .iter()
            .enumerate()
            .filter(|(i, v)| **v > 1e-9 && !detected.iter().any(|d| d.switch.0 as usize == *i))
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite votes"))
        else {
            break;
        };
        if v < threshold_frac * total {
            break;
        }
        let switch = SwitchId(idx as u32);
        detected.push(SwitchDetection { switch, votes: v });
        for (i, set) in switch_sets.iter().enumerate() {
            if !explained[i] && set.contains(&switch) {
                explained[i] = true;
                let w = 1.0 / set.len() as f64;
                for s in set {
                    let slot = &mut votes[s.0 as usize];
                    *slot = (*slot - w).max(0.0);
                }
            }
        }
    }
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use vigil_topology::{ClosParams, LinkId};

    fn topo() -> ClosTopology {
        ClosTopology::new(ClosParams::tiny(), 31).unwrap()
    }

    #[test]
    fn bad_switch_outranks_links() {
        let topo = topo();
        // Flows through multiple different links of the same T1 switch.
        let t1 = topo.t1(0, 0);
        let in_links: Vec<LinkId> = topo
            .links()
            .iter()
            .filter(|l| l.to == Node::Switch(t1))
            .map(|l| l.id)
            .collect();
        let out_links: Vec<LinkId> = topo
            .links()
            .iter()
            .filter(|l| l.from == Node::Switch(t1))
            .map(|l| l.id)
            .collect();
        let evidence: Vec<FlowEvidence> = in_links
            .iter()
            .zip(out_links.iter().cycle())
            .take(8)
            .map(|(a, b)| FlowEvidence::new(vec![*a, *b], 1))
            .collect();
        let tally = SwitchTally::tally(&topo, &evidence);
        assert_eq!(tally.ranking()[0].0, t1);
    }

    #[test]
    fn empty_evidence() {
        let topo = topo();
        let tally = SwitchTally::tally(&topo, &[]);
        assert!(tally.ranking().is_empty());
    }

    #[test]
    fn distinct_switch_normalization() {
        let topo = topo();
        // One flow: votes sum to 1 over its distinct switches.
        let host = vigil_topology::HostId(0);
        let tor = topo.host_tor(host);
        let up = topo
            .link_between(Node::Host(host), Node::Switch(tor))
            .unwrap();
        let evidence = vec![FlowEvidence::new(vec![up], 1)];
        let tally = SwitchTally::tally(&topo, &evidence);
        assert!((tally.votes(tor) - 1.0).abs() < 1e-12);
        assert!((tally.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detect_switches_finds_the_sick_one() {
        let topo = topo();
        let t1 = topo.t1(0, 1);
        // Flows through many distinct interfaces of t1 (a failing ASIC),
        // plus unrelated flows elsewhere.
        let t1_links: Vec<LinkId> = topo
            .links()
            .iter()
            .filter(|l| l.from == Node::Switch(t1) || l.to == Node::Switch(t1))
            .map(|l| l.id)
            .collect();
        let mut evidence: Vec<FlowEvidence> = t1_links
            .windows(2)
            .take(10)
            .map(|w| FlowEvidence::new(w.to_vec(), 1))
            .collect();
        // Unrelated lone flow through a different pod's T1.
        let other = topo.t1(1, 0);
        let other_link = topo
            .links()
            .iter()
            .find(|l| l.from == Node::Switch(other))
            .unwrap()
            .id;
        evidence.push(FlowEvidence::new(vec![other_link], 1));

        let detections = detect_switches(&topo, &evidence, 0.01);
        assert_eq!(detections.first().map(|d| d.switch), Some(t1));
        // After explaining t1's flows, only the lone flow remains; its
        // switches clear 1% of the residual total, so extra detections
        // are allowed — but t1 must be first and dominant (each of the 10
        // flows gives it ⅓–½ of a vote; no neighbour gets more than a
        // couple).
        assert!(detections[0].votes > 3.0, "got {}", detections[0].votes);
    }

    #[test]
    fn detect_switches_empty_and_threshold() {
        let topo = topo();
        assert!(detect_switches(&topo, &[], 0.01).is_empty());
        // A uniform smear with a high threshold detects nothing.
        let evidence: Vec<FlowEvidence> = topo
            .links()
            .iter()
            .filter(|l| l.kind == vigil_topology::LinkKind::TorToT1)
            .take(12)
            .map(|l| FlowEvidence::new(vec![l.id], 1))
            .collect();
        let detections = detect_switches(&topo, &evidence, 0.9);
        assert!(detections.is_empty());
    }
}
