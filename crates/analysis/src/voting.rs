//! Vote casting and tallying (§5.1).
//!
//! "If a flow sees a retransmission, 007 votes its links as bad. Each vote
//! has a value that is tallied at the end of every epoch, providing a
//! natural ranking of the links. We set the value of good votes to 0 …
//! Bad votes are assigned a value of 1/h, where h is the number of hops on
//! the path, since each link on the path is equally likely to be
//! responsible for the drop."
//!
//! [`VoteWeight`] carries the DESIGN.md ablation: the paper's `1/h`
//! against flat votes (over-blames long paths) and `1/h²` (under-weights
//! evidence from long paths).

use crate::evidence::FlowEvidence;
use serde::{Deserialize, Serialize};
use vigil_topology::{LinkId, LinkSet};

/// Vote value assigned to each link of a retransmitting flow's path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum VoteWeight {
    /// The paper's choice: `1/h`.
    #[default]
    ReciprocalPathLength,
    /// Ablation: every link gets a full vote.
    Unit,
    /// Ablation: `1/h²`.
    ReciprocalSquared,
}

impl VoteWeight {
    /// The per-link vote value for a path of `h` links.
    pub fn value(self, h: usize) -> f64 {
        if h == 0 {
            return 0.0;
        }
        let h = h as f64;
        match self {
            VoteWeight::ReciprocalPathLength => 1.0 / h,
            VoteWeight::Unit => 1.0,
            VoteWeight::ReciprocalSquared => 1.0 / (h * h),
        }
    }
}

/// Dense per-link vote tally for one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoteTally {
    votes: Vec<f64>,
    total: f64,
}

impl VoteTally {
    /// An empty tally over `num_links` links.
    pub fn new(num_links: usize) -> Self {
        Self {
            votes: vec![0.0; num_links],
            total: 0.0,
        }
    }

    /// Tallies a whole epoch of evidence.
    pub fn tally(evidence: &[FlowEvidence], num_links: usize, weight: VoteWeight) -> Self {
        let mut t = Self::new(num_links);
        for e in evidence {
            t.cast(e, weight);
        }
        t
    }

    /// Casts one flow's votes.
    pub fn cast(&mut self, evidence: &FlowEvidence, weight: VoteWeight) {
        let w = weight.value(evidence.hop_count());
        for l in &evidence.links {
            self.votes[l.index()] += w;
            self.total += w;
        }
    }

    /// Retracts one flow's votes (Algorithm 1's adjustment: the flow is
    /// now explained by a detected link, so its votes on *other* links
    /// were noise amplification). Votes clamp at zero against float
    /// drift.
    pub fn retract(&mut self, evidence: &FlowEvidence, weight: VoteWeight) {
        let w = weight.value(evidence.hop_count());
        for l in &evidence.links {
            let v = &mut self.votes[l.index()];
            let mut removed = w.min(*v);
            *v -= removed;
            if *v < 1e-12 {
                // Snap float dust to a true zero so residues never
                // masquerade as votes.
                removed += *v;
                *v = 0.0;
            }
            self.total -= removed;
        }
        if self.total < 1e-12 {
            self.total = 0.0;
        }
    }

    /// A link's current vote count.
    pub fn votes(&self, link: LinkId) -> f64 {
        self.votes[link.index()]
    }

    /// Sum of votes over all links.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of links tracked.
    pub fn num_links(&self) -> usize {
        self.votes.len()
    }

    /// The most-voted link, skipping `exclude`; ties break to the lowest
    /// id. Returns `None` when every (non-excluded) link has zero votes.
    /// The exclusion set is the dense [`LinkSet`] bitset — link ids are
    /// dense indices, so membership is a word probe, not a hash.
    pub fn max_excluding(&self, exclude: &LinkSet) -> Option<(LinkId, f64)> {
        self.max_where(|l, _| !exclude.contains(l))
    }

    /// The most-voted link among those the predicate admits; ties break
    /// to the lowest id. `None` when no admitted link has positive votes.
    pub fn max_where(&self, mut admit: impl FnMut(LinkId, f64) -> bool) -> Option<(LinkId, f64)> {
        let mut best: Option<(LinkId, f64)> = None;
        for (i, &v) in self.votes.iter().enumerate() {
            if v <= 0.0 {
                continue;
            }
            let id = LinkId(i as u32);
            if !admit(id, v) {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, bv)) => v > bv,
            };
            if better {
                best = Some((id, v));
            }
        }
        best
    }

    /// The full ranking: `(link, votes)` sorted by votes descending, zero
    /// -vote links omitted, ties by id ascending. This is the paper's
    /// "heat-map of the network".
    pub fn ranking(&self) -> Vec<(LinkId, f64)> {
        let mut v: Vec<(LinkId, f64)> = self
            .votes
            .iter()
            .enumerate()
            .filter(|(_, v)| **v > 0.0)
            .map(|(i, v)| (LinkId(i as u32), *v))
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite votes")
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// The most-voted link among `links` (per-flow blame support); ties to
    /// the lowest id; `None` if none of them holds votes.
    pub fn top_among(&self, links: &[LinkId]) -> Option<(LinkId, f64)> {
        links
            .iter()
            .map(|l| (*l, self.votes(*l)))
            .filter(|(_, v)| *v > 0.0)
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite votes")
                    .then(b.0.cmp(&a.0))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ev(links: &[u32], retx: u32) -> FlowEvidence {
        FlowEvidence::new(links.iter().map(|l| LinkId(*l)).collect(), retx)
    }

    #[test]
    fn weights() {
        assert_eq!(VoteWeight::ReciprocalPathLength.value(4), 0.25);
        assert_eq!(VoteWeight::Unit.value(4), 1.0);
        assert_eq!(VoteWeight::ReciprocalSquared.value(2), 0.25);
        assert_eq!(VoteWeight::ReciprocalPathLength.value(0), 0.0);
    }

    #[test]
    fn one_flow_casts_unit_total() {
        // h links × 1/h each = exactly 1 vote of total mass per flow.
        let mut t = VoteTally::new(10);
        t.cast(&ev(&[1, 2, 3, 4], 1), VoteWeight::ReciprocalPathLength);
        assert!((t.total() - 1.0).abs() < 1e-12);
        assert!((t.votes(LinkId(1)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tally_accumulates() {
        let evidence = vec![ev(&[1, 2], 1), ev(&[2, 3], 1)];
        let t = VoteTally::tally(&evidence, 5, VoteWeight::ReciprocalPathLength);
        assert!((t.votes(LinkId(2)) - 1.0).abs() < 1e-12);
        assert!((t.votes(LinkId(1)) - 0.5).abs() < 1e-12);
        assert!((t.total() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_orders_and_breaks_ties() {
        let evidence = vec![ev(&[1, 2], 1), ev(&[2, 3], 1), ev(&[4, 5], 1)];
        let t = VoteTally::tally(&evidence, 8, VoteWeight::ReciprocalPathLength);
        let r = t.ranking();
        assert_eq!(r[0].0, LinkId(2));
        // 1, 3, 4, 5 all at 0.5: ties by id.
        assert_eq!(
            r[1..].iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![LinkId(1), LinkId(3), LinkId(4), LinkId(5)]
        );
    }

    #[test]
    fn retract_undoes_cast() {
        let mut t = VoteTally::new(6);
        let e1 = ev(&[1, 2, 3], 1);
        let e2 = ev(&[3, 4], 1);
        t.cast(&e1, VoteWeight::ReciprocalPathLength);
        t.cast(&e2, VoteWeight::ReciprocalPathLength);
        t.retract(&e1, VoteWeight::ReciprocalPathLength);
        assert!(t.votes(LinkId(1)).abs() < 1e-12);
        assert!((t.votes(LinkId(3)) - 0.5).abs() < 1e-12);
        assert!((t.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn retract_clamps_at_zero() {
        let mut t = VoteTally::new(3);
        let e = ev(&[1], 1);
        t.retract(&e, VoteWeight::Unit); // retract without cast
        assert_eq!(t.votes(LinkId(1)), 0.0);
        assert_eq!(t.total(), 0.0);
    }

    #[test]
    fn max_excluding_skips() {
        let t = VoteTally::tally(
            &[ev(&[1, 2], 1), ev(&[2], 1)],
            4,
            VoteWeight::ReciprocalPathLength,
        );
        let mut ex = LinkSet::new(4);
        assert_eq!(t.max_excluding(&ex).unwrap().0, LinkId(2));
        ex.insert(LinkId(2));
        assert_eq!(t.max_excluding(&ex).unwrap().0, LinkId(1));
        ex.insert(LinkId(1));
        assert!(t.max_excluding(&ex).is_none());
    }

    #[test]
    fn top_among_restricted() {
        let t = VoteTally::tally(
            &[ev(&[1, 2], 1), ev(&[2, 3], 1)],
            5,
            VoteWeight::ReciprocalPathLength,
        );
        assert_eq!(t.top_among(&[LinkId(1), LinkId(3)]).unwrap().0, LinkId(1));
        assert_eq!(t.top_among(&[LinkId(2), LinkId(3)]).unwrap().0, LinkId(2));
        assert!(t.top_among(&[LinkId(4)]).is_none());
    }

    proptest! {
        #[test]
        fn total_equals_sum_of_votes(paths in proptest::collection::vec(
            proptest::collection::vec(0u32..20, 1..6), 0..30)) {
            let evidence: Vec<FlowEvidence> = paths.iter()
                .map(|p| ev(p, 1)).collect();
            let t = VoteTally::tally(&evidence, 20, VoteWeight::ReciprocalPathLength);
            let sum: f64 = (0..20).map(|i| t.votes(LinkId(i))).sum();
            prop_assert!((sum - t.total()).abs() < 1e-9);
        }

        #[test]
        fn vote_mass_conservation(paths in proptest::collection::vec(
            proptest::collection::vec(0u32..20, 1..6), 1..30)) {
            // Each flow casts exactly 1.0 total mass under 1/h (duplicate
            // links in a path would double-count, so dedupe first).
            let evidence: Vec<FlowEvidence> = paths.iter().map(|p| {
                let mut q = p.clone();
                q.sort_unstable();
                q.dedup();
                ev(&q, 1)
            }).collect();
            let t = VoteTally::tally(&evidence, 20, VoteWeight::ReciprocalPathLength);
            prop_assert!((t.total() - evidence.len() as f64).abs() < 1e-9);
        }
    }
}
