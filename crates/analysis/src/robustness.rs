//! Robustness observability for the democratic tally.
//!
//! The byzantine-voter axis (a fraction of hosts lying, muting, or
//! flooding) degrades the tally gradually rather than failing it
//! outright. These counters make the degradation measurable without
//! changing any verdict:
//!
//! * [`RobustnessCounters`] — how much evidence the [`VoteLedger`]
//!   absorbed versus discarded again (superseded by at-least-once
//!   redelivery, or retracted by withdrawal). A flooder inflates
//!   `absorbed`; dedup shows up in `superseded`.
//! * [`VoteVolumeStats`] — per-host vote-volume moments with a
//!   `mean + 3σ` outlier cutoff. A flooding host casts far more evidence
//!   than its honest peers and surfaces here long before it moves the
//!   link ranking.
//!
//! [`VoteLedger`]: crate::ledger::VoteLedger

use serde::{Deserialize, Serialize};

/// Cumulative absorb/discard accounting for a [`VoteLedger`]
/// (cross-window; never reset by a window close).
///
/// [`VoteLedger`]: crate::ledger::VoteLedger
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessCounters {
    /// Evidence items absorbed into a window (every `absorb` call).
    pub absorbed: u64,
    /// Absorptions that superseded an existing key — the earlier votes
    /// were retracted first, so redelivery never double-counts.
    pub superseded: u64,
    /// Evidence explicitly retracted (withdrawn reports).
    pub retracted: u64,
}

impl RobustnessCounters {
    /// Evidence discarded by exclusion: superseded plus retracted.
    pub fn discarded(&self) -> u64 {
        self.superseded + self.retracted
    }

    /// Evidence that actually contributed votes at window close.
    pub fn net_absorbed(&self) -> u64 {
        self.absorbed - self.discarded()
    }
}

/// Moments of a per-host vote-volume distribution with a `mean + 3σ`
/// outlier cutoff — the cheap flooder detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoteVolumeStats {
    /// Hosts with at least one evidence item.
    pub hosts: usize,
    /// Total evidence items across all hosts.
    pub total: u64,
    /// Mean evidence items per reporting host.
    pub mean: f64,
    /// Population standard deviation of the per-host counts.
    pub stddev: f64,
    /// The largest single host's volume.
    pub max: u64,
    /// Hosts above the outlier cutoff.
    pub outliers: usize,
}

impl VoteVolumeStats {
    /// Computes the moments of `counts` (one entry per reporting host).
    pub fn from_counts(counts: &[u64]) -> Self {
        if counts.is_empty() {
            return Self {
                hosts: 0,
                total: 0,
                mean: 0.0,
                stddev: 0.0,
                max: 0,
                outliers: 0,
            };
        }
        let hosts = counts.len();
        let total: u64 = counts.iter().sum();
        let mean = total as f64 / hosts as f64;
        let var = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / hosts as f64;
        let stddev = var.sqrt();
        let mut stats = Self {
            hosts,
            total,
            mean,
            stddev,
            max: counts.iter().copied().max().unwrap_or(0),
            outliers: 0,
        };
        stats.outliers = counts.iter().filter(|&&c| stats.is_outlier(c)).count();
        stats
    }

    /// The outlier bar: `mean + 3σ`, but never below `mean + 1` so a
    /// perfectly uniform distribution (σ = 0) has no outliers.
    pub fn outlier_cutoff(&self) -> f64 {
        self.mean + (3.0 * self.stddev).max(1.0)
    }

    /// Whether a single host's volume clears the outlier bar.
    pub fn is_outlier(&self, count: u64) -> bool {
        count as f64 > self.outlier_cutoff()
    }
}

/// Computes [`VoteVolumeStats`] over keyed volumes and returns the stats
/// plus the outlier keys (the suspect hosts), in input order.
pub fn volume_outliers<H: Copy>(volumes: &[(H, u64)]) -> (VoteVolumeStats, Vec<H>) {
    let counts: Vec<u64> = volumes.iter().map(|(_, c)| *c).collect();
    let stats = VoteVolumeStats::from_counts(&counts);
    let suspects = volumes
        .iter()
        .filter(|(_, c)| stats.is_outlier(*c))
        .map(|(h, _)| *h)
        .collect();
    (stats, suspects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_account_for_discards() {
        let c = RobustnessCounters {
            absorbed: 10,
            superseded: 2,
            retracted: 1,
        };
        assert_eq!(c.discarded(), 3);
        assert_eq!(c.net_absorbed(), 7);
    }

    #[test]
    fn uniform_volumes_have_no_outliers() {
        let stats = VoteVolumeStats::from_counts(&[4, 4, 4, 4]);
        assert_eq!(stats.hosts, 4);
        assert_eq!(stats.total, 16);
        assert_eq!(stats.stddev, 0.0);
        assert_eq!(stats.outliers, 0, "sigma-0 floor suppresses outliers");
    }

    #[test]
    fn a_flooding_host_is_an_outlier() {
        // 30 honest hosts around 3 items, one host at 400.
        let mut volumes: Vec<(u32, u64)> = (0..30).map(|h| (h, 2 + u64::from(h) % 3)).collect();
        volumes.push((99, 400));
        let (stats, suspects) = volume_outliers(&volumes);
        assert_eq!(stats.outliers, 1);
        assert_eq!(suspects, vec![99]);
        assert_eq!(stats.max, 400);
        assert!(stats.mean < 20.0);
    }

    #[test]
    fn empty_distribution_is_degenerate_but_valid() {
        let stats = VoteVolumeStats::from_counts(&[]);
        assert_eq!(stats.hosts, 0);
        assert_eq!(stats.outliers, 0);
        assert!(!stats.is_outlier(0));
    }
}
