//! Analysis-agent input: one record per traced flow.

use serde::{Deserialize, Serialize};
use vigil_topology::LinkId;

/// Everything the analysis agent knows about one flow that suffered
/// retransmissions this epoch: its discovered path and the retransmission
/// count. (It deliberately does *not* see topology ground truth.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowEvidence {
    /// Links of the discovered (possibly partial) path.
    pub links: Vec<LinkId>,
    /// Retransmissions observed by the monitoring agent.
    pub retransmissions: u32,
    /// Whether the discovered path was complete (reached the destination).
    pub complete: bool,
}

impl FlowEvidence {
    /// Evidence with a complete path.
    pub fn new(links: Vec<LinkId>, retransmissions: u32) -> Self {
        Self {
            links,
            retransmissions,
            complete: true,
        }
    }

    /// Path length `h` for the `1/h` vote.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_and_hops() {
        let e = FlowEvidence::new(vec![LinkId(1), LinkId(2), LinkId(3)], 4);
        assert_eq!(e.hop_count(), 3);
        assert!(e.complete);
        assert_eq!(e.retransmissions, 4);
    }
}
