//! The 007 analysis agent (paper §5).
//!
//! The voting scheme in one sentence: every flow that suffered a
//! retransmission casts a vote of `1/h` on each of the `h` links of its
//! discovered path; tallying the votes per 30-second epoch ranks links by
//! how likely they are to be dropping packets, the top-voted link on a
//! flow's path is that flow's most probable drop cause, and Algorithm 1
//! extracts the set of failed links by iteratively taking the most-voted
//! link and discounting the votes it explains.
//!
//! * [`evidence`] — the input record (one per traced flow).
//! * [`voting`] — vote casting and tallies ([`VoteTally`]), with the
//!   weight-scheme ablation (`1/h` vs `1` vs `1/h²`).
//! * [`algorithm1`] — the paper's Algorithm 1 with the 1 % threshold and
//!   the ECMP-based vote adjustment (§5.1, −5 % false positives).
//! * [`blame`] — per-flow most-likely-cause assignment from the ranking.
//! * [`ledger`] — the incremental [`VoteLedger`] of the streaming service
//!   mode: absorb/retract evidence as it arrives, close 30-second
//!   windows without re-scanning flows, feed the [`LinkHealth`] ring.
//! * [`noise`] — the noise / failure-drop classification of §6.
//! * [`robustness`] — absorb/discard counters and per-host vote-volume
//!   outlier stats: the observability for the byzantine-voter axis.
//! * [`switch_votes`] — the switch-level voting extension (§5.1).
//! * [`latency`] — the latency-diagnosis extension sketched in §9.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm1;
pub mod blame;
pub mod evidence;
pub mod history;
pub mod latency;
pub mod ledger;
pub mod noise;
pub mod robustness;
pub mod switch_votes;
pub mod voting;

pub use algorithm1::{detect, Algorithm1Config, Algorithm1Output, Detection, ThresholdBase};
pub use blame::blame_flow;
pub use evidence::FlowEvidence;
pub use history::LinkHealth;
pub use ledger::{LedgerSnapshot, ShardedVoteLedger, VoteLedger, WindowAnalysis, WindowSummary};
pub use noise::{classify_flows, DropClass};
pub use robustness::{volume_outliers, RobustnessCounters, VoteVolumeStats};
pub use switch_votes::{detect_switches, SwitchDetection, SwitchTally};
pub use voting::{VoteTally, VoteWeight};
