//! Per-flow blame assignment (§5.1).
//!
//! "The ranking obtained after compiling the votes allows us to identify
//! the most likely cause of drops on each flow: links ranked higher have
//! higher drop rates (Theorem 2)." The blamed link for a flow is simply
//! the most-voted link on its own (discovered) path.

use crate::evidence::FlowEvidence;
use crate::voting::VoteTally;
use vigil_topology::LinkId;

/// The most likely cause of this flow's drops: the highest-voted link on
/// its path (ties to the lowest id). `None` when no link on the path holds
/// votes — impossible for a flow that itself voted, possible for an
/// outsider's path.
pub fn blame_flow(tally: &VoteTally, evidence: &FlowEvidence) -> Option<LinkId> {
    tally.top_among(&evidence.links).map(|(l, _)| l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voting::VoteWeight;

    fn ev(links: &[u32]) -> FlowEvidence {
        FlowEvidence::new(links.iter().map(|l| LinkId(*l)).collect(), 1)
    }

    #[test]
    fn blames_highest_voted_on_path() {
        // Link 5 shared by many failed flows; link 9 only on one path.
        let evidence: Vec<FlowEvidence> = (0..8)
            .map(|i| ev(&[5, 10 + i]))
            .chain([ev(&[9, 5])])
            .collect();
        let tally = VoteTally::tally(&evidence, 20, VoteWeight::ReciprocalPathLength);
        assert_eq!(blame_flow(&tally, &ev(&[9, 5])), Some(LinkId(5)));
        assert_eq!(blame_flow(&tally, &ev(&[5, 10])), Some(LinkId(5)));
    }

    #[test]
    fn no_votes_no_blame() {
        let tally = VoteTally::new(10);
        assert_eq!(blame_flow(&tally, &ev(&[1, 2])), None);
    }

    #[test]
    fn a_flow_that_voted_always_gets_a_blame() {
        let evidence = vec![ev(&[3, 4])];
        let tally = VoteTally::tally(&evidence, 10, VoteWeight::ReciprocalPathLength);
        let blamed = blame_flow(&tally, &evidence[0]).unwrap();
        assert!(evidence[0].links.contains(&blamed));
    }
}
