//! Noise / failure-drop classification (§6).
//!
//! "007 first finds flows whose drops were due to noise and marks them as
//! 'noise drops'. It then finds the link most likely responsible for
//! drops on the remaining set of flows ('failure drops'). … 007 never
//! marked a connection into the noisy category incorrectly."
//!
//! This classification runs **before** detection — "007 first finds
//! flows whose drops were due to noise and marks them as 'noise drops'.
//! It then finds the link most likely responsible for drops on the
//! remaining set of flows" (§6) — so Algorithm 1's vote pool contains
//! only failure-class evidence. (That ordering is also what makes the
//! algorithm's shrinking threshold safe: once real failures are explained
//! and retracted, no residual lone-drop votes are left to masquerade as
//! detections.)
//!
//! Without ground truth, 007 classifies from what it can see, given a
//! *conservative* first-pass detection (Algorithm 1 with the fixed
//! threshold bar — the links that are definitely bad). A flow is *noise*
//! only when its drop pattern is consistent with a lone, sporadic loss,
//! which takes all of:
//!
//! 1. exactly one retransmission;
//! 2. no conservatively-detected link on its path (a single
//!    retransmission on a known-bad link is evidence, not noise);
//! 3. the flow is the **sole voter** on every link of its path *among
//!    the flows not already explained by the detected links* — if an
//!    unexplained flow shares a link, that link may have dropped more
//!    than one packet, and marking this flow noise could be wrong.
//!    (Flows crossing detected links don't disqualify: their drops are
//!    already accounted to those links.)
//!
//! Condition 3 is what makes the classifier *sound* (the paper: "007
//! never marked a connection into the noisy category incorrectly"): it
//! deliberately under-marks (a genuine lone drop sharing a healthy link
//! with another victim stays in the failure class) rather than ever
//! mislabeling a failure drop as noise.

use crate::evidence::FlowEvidence;
use serde::{Deserialize, Serialize};
use vigil_topology::{LinkId, LinkSet};

/// The classification of one flow's drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropClass {
    /// Lone, sporadic loss on an apparently healthy path.
    Noise,
    /// Drops attributed to a problematic link.
    Failure,
}

/// Classifies each flow in the epoch's evidence against a conservative
/// first-pass detection. Noise-class flows are withheld from the final
/// Algorithm 1 vote pool (the paper's §6 ordering: noise first, then
/// detection on the rest).
///
/// `num_links` sizes the dense per-link voter table (link ids are dense
/// `0..num_links` indices — the same argument [`crate::detect`] takes).
pub fn classify_flows(
    evidence: &[FlowEvidence],
    detected: &[LinkId],
    num_links: usize,
) -> Vec<DropClass> {
    let mut bad = LinkSet::new(num_links);
    for l in detected {
        bad.insert(*l);
    }
    let crosses_bad: Vec<bool> = evidence
        .iter()
        .map(|e| e.links.iter().any(|l| bad.contains(*l)))
        .collect();
    // Voter counts over *unexplained* flows only — dense, keyed by
    // `LinkId::index()`, iterated in id order wherever order matters.
    let mut voters = vec![0u32; num_links];
    for (e, crosses) in evidence.iter().zip(&crosses_bad) {
        if *crosses {
            continue;
        }
        for l in &e.links {
            voters[l.index()] += 1;
        }
    }
    evidence
        .iter()
        .zip(&crosses_bad)
        .map(|(e, crosses)| {
            let sole_voter = e.links.iter().all(|l| voters[l.index()] <= 1);
            if e.retransmissions == 1 && !crosses && sole_voter {
                DropClass::Noise
            } else {
                DropClass::Failure
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(links: &[u32], retx: u32) -> FlowEvidence {
        FlowEvidence::new(links.iter().map(|l| LinkId(*l)).collect(), retx)
    }

    #[test]
    fn lone_isolated_drop_is_noise() {
        let classes = classify_flows(&[ev(&[1, 2], 1)], &[], 64);
        assert_eq!(classes, vec![DropClass::Noise]);
    }

    #[test]
    fn lone_drop_on_detected_link_is_failure() {
        let classes = classify_flows(&[ev(&[1, 9], 1)], &[LinkId(9)], 64);
        assert_eq!(classes, vec![DropClass::Failure]);
    }

    #[test]
    fn lone_drop_sharing_a_suspect_link_is_failure() {
        // The 1-retx flow shares link 9 with a heavily retransmitting,
        // unexplained flow: link 9 may have dropped both, so no noise
        // mark for either.
        let evidence = vec![ev(&[1, 9], 1), ev(&[9, 7], 5)];
        let classes = classify_flows(&evidence, &[], 64);
        assert_eq!(classes, vec![DropClass::Failure, DropClass::Failure]);
    }

    #[test]
    fn explained_flows_do_not_disqualify_noise() {
        // The heavy flow crosses a detected link (2 → explained); the
        // lone flow sharing healthy link 3 with it is genuinely a lone
        // voter among the unexplained and may be marked noise.
        let evidence = vec![ev(&[3, 4], 1), ev(&[3, 2], 9)];
        let classes = classify_flows(&evidence, &[LinkId(2)], 64);
        assert_eq!(classes, vec![DropClass::Noise, DropClass::Failure]);
    }

    #[test]
    fn multiple_retransmissions_are_failure() {
        let classes = classify_flows(&[ev(&[1, 2], 3)], &[], 64);
        assert_eq!(classes, vec![DropClass::Failure]);
    }

    #[test]
    fn mixed_epoch() {
        let evidence = vec![ev(&[1, 9], 5), ev(&[2, 3], 1), ev(&[4, 9], 1)];
        let classes = classify_flows(&evidence, &[], 64);
        assert_eq!(
            classes,
            vec![DropClass::Failure, DropClass::Noise, DropClass::Failure]
        );
    }

    #[test]
    fn shared_link_disqualifies_noise() {
        // Two lone-retransmission flows sharing link 5: either could be a
        // victim of the same >1-drop link, so neither may be noise-marked.
        let evidence = vec![ev(&[5, 1], 1), ev(&[5, 2], 1)];
        let classes = classify_flows(&evidence, &[], 64);
        assert_eq!(classes, vec![DropClass::Failure, DropClass::Failure]);
    }

    #[test]
    fn empty_inputs() {
        assert!(classify_flows(&[], &[LinkId(1)], 64).is_empty());
    }
}
