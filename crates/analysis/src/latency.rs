//! Latency diagnosis (the §9.2 extension).
//!
//! "For example, for latency, ETW provides TCP's smooth RTT estimates
//! upon each received ACK. Thresholding on these values allows for
//! identifying 'failed' flows and 007's voting scheme can be used to
//! provide a ranked list of suspects."
//!
//! This module is that sketch made concrete: an EWMA smoother matching
//! TCP's SRTT update (`srtt ← (1−α)·srtt + α·rtt`, α = 1/8 per RFC 6298)
//! plus a thresholding classifier that turns slow flows into
//! [`FlowEvidence`] for the ordinary voting pipeline.

use crate::evidence::FlowEvidence;
use serde::{Deserialize, Serialize};
use vigil_topology::LinkId;

/// TCP-style smoothed RTT estimator (RFC 6298, α = 1/8).
#[derive(Debug, Clone, Copy, Serialize, Deserialize, Default)]
pub struct SrttEstimator {
    srtt: Option<f64>,
}

impl SrttEstimator {
    /// A fresh estimator (no samples yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one RTT sample (seconds), returning the updated SRTT.
    pub fn update(&mut self, rtt: f64) -> f64 {
        assert!(rtt >= 0.0 && rtt.is_finite(), "RTT must be finite, ≥ 0");
        let next = match self.srtt {
            None => rtt,
            Some(s) => 0.875 * s + 0.125 * rtt,
        };
        self.srtt = Some(next);
        next
    }

    /// The current estimate, if any sample arrived.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }
}

/// One flow's latency record as the monitoring agent sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowLatency {
    /// The flow's (discovered) path.
    pub links: Vec<LinkId>,
    /// Its smoothed RTT, seconds.
    pub srtt: f64,
}

/// Flows whose SRTT exceeds `threshold` become voting evidence — the
/// "failed flows" of the latency variant. Retransmission count is reused
/// as a severity tag (1 = crossed the threshold).
pub fn high_latency_evidence(flows: &[FlowLatency], threshold: f64) -> Vec<FlowEvidence> {
    flows
        .iter()
        .filter(|f| f.srtt > threshold)
        .map(|f| FlowEvidence::new(f.links.clone(), 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voting::{VoteTally, VoteWeight};

    #[test]
    fn srtt_first_sample_initializes() {
        let mut e = SrttEstimator::new();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.update(0.100), 0.100);
    }

    #[test]
    fn srtt_smooths_like_rfc6298() {
        let mut e = SrttEstimator::new();
        e.update(0.100);
        let s = e.update(0.200);
        assert!((s - (0.875 * 0.100 + 0.125 * 0.200)).abs() < 1e-12);
    }

    #[test]
    fn srtt_converges_to_constant_input() {
        let mut e = SrttEstimator::new();
        for _ in 0..200 {
            e.update(0.050);
        }
        assert!((e.srtt().unwrap() - 0.050).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "RTT must be finite")]
    fn srtt_rejects_nan() {
        SrttEstimator::new().update(f64::NAN);
    }

    #[test]
    fn thresholding_selects_slow_flows() {
        let flows = vec![
            FlowLatency {
                links: vec![LinkId(1), LinkId(2)],
                srtt: 0.0005,
            },
            FlowLatency {
                links: vec![LinkId(2), LinkId(3)],
                srtt: 0.050, // a queue built up somewhere
            },
        ];
        let evidence = high_latency_evidence(&flows, 0.002);
        assert_eq!(evidence.len(), 1);
        assert_eq!(evidence[0].links, vec![LinkId(2), LinkId(3)]);
    }

    #[test]
    fn latency_votes_rank_the_shared_link() {
        // Three slow flows all cross link 7.
        let flows: Vec<FlowLatency> = (0..3)
            .map(|i| FlowLatency {
                links: vec![LinkId(7), LinkId(10 + i)],
                srtt: 0.030,
            })
            .collect();
        let evidence = high_latency_evidence(&flows, 0.002);
        let tally = VoteTally::tally(&evidence, 20, VoteWeight::ReciprocalPathLength);
        assert_eq!(tally.ranking()[0].0, LinkId(7));
    }
}
