//! The incremental vote ledger: the analysis agent's state in streaming
//! service mode.
//!
//! The batch pipeline hands the analysis agent a whole epoch of evidence
//! at once. A deployed 007 sees evidence trickle in as retransmissions
//! happen and tallies "at regular intervals of 30s" (§5.1). The
//! [`VoteLedger`] is that always-on accumulator:
//!
//! * [`VoteLedger::absorb`] folds one flow's [`FlowEvidence`] in the
//!   moment it arrives — a [`VoteTally::cast`] into the live tally plus
//!   an insertion into the window's canonically-ordered evidence store.
//!   [`VoteLedger::retract`] undoes one (a withdrawn or superseded
//!   report) via [`VoteTally::retract`].
//! * [`VoteLedger::close_window`] runs the full two-pass analysis
//!   (conservative detection → noise classification → Algorithm 1 on the
//!   failure class) over the window's evidence **without ever touching
//!   flow records** — the epoch's flows are long gone; only their
//!   evidence (a few links + a count per traced flow) was retained.
//! * Closed windows feed a bounded ring of [`WindowSummary`]s and a
//!   cross-window [`LinkHealth`] EWMA — the operator's heat map — so the
//!   ledger's memory is constant in epochs: `O(window evidence + K
//!   summaries + num_links)`.
//!
//! **Canonical order.** Algorithm 1's vote adjustment retracts explained
//! flows in evidence order, so float results depend on that order. The
//! ledger stores the window's evidence in a `BTreeMap` keyed by the
//! caller's `K` (the pipeline uses `(HostId, FiveTuple)`), which is
//! exactly the batch pipeline's canonical report sort — absorption order
//! (host scheduling, hub arrival) never leaks into the analysis, and the
//! window close is bit-identical to the batch epoch. The *live* tally is
//! cast in arrival order; it serves monitoring snapshots between closes
//! (rankings, not detections) and is reset at each close.

use crate::algorithm1::{detect, Algorithm1Config, Algorithm1Output, ThresholdBase};
use crate::evidence::FlowEvidence;
use crate::history::LinkHealth;
use crate::noise::{classify_flows, DropClass};
use crate::robustness::RobustnessCounters;
use crate::voting::VoteTally;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use vigil_topology::LinkId;

/// What the ledger keeps of a closed window — the constant-size residue
/// of an epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSummary {
    /// The window's index (0-based, counted by the ledger).
    pub epoch: u64,
    /// Evidence items (traced flows) the window absorbed.
    pub evidence: usize,
    /// Total vote mass cast in the window.
    pub total_votes: f64,
    /// Algorithm 1's detections, in pick order.
    pub detections: Vec<crate::algorithm1::Detection>,
    /// Flows classified as noise.
    pub noise_flows: usize,
}

/// The full analysis of one closed window — everything the batch
/// pipeline's per-epoch analysis produces, in the batch pipeline's
/// canonical evidence order.
#[derive(Debug, Clone)]
pub struct WindowAnalysis {
    /// The window's index.
    pub epoch: u64,
    /// The window's evidence, canonical (key-ascending) order.
    pub evidence: Vec<FlowEvidence>,
    /// The conservative first pass (fixed threshold bar) that licenses
    /// the noise filter.
    pub conservative: Algorithm1Output,
    /// Per-evidence classification (parallel to `evidence`).
    pub classes: Vec<DropClass>,
    /// Algorithm 1 on the failure-class evidence — the window's verdict.
    pub detection: Algorithm1Output,
    /// Pick order with the threshold disabled (first 20) — the Figure 12
    /// counterfactual.
    pub unbounded_picks: Vec<LinkId>,
}

/// The streaming analysis agent's accumulator. `K` is the evidence key
/// that defines canonical order; the pipeline uses `(HostId, FiveTuple)`.
#[derive(Debug, Clone)]
pub struct VoteLedger<K: Ord> {
    num_links: usize,
    config: Algorithm1Config,
    epoch: u64,
    window: BTreeMap<K, FlowEvidence>,
    live: VoteTally,
    ring: VecDeque<WindowSummary>,
    ring_capacity: usize,
    health: LinkHealth,
    robustness: RobustnessCounters,
}

impl<K: Ord> VoteLedger<K> {
    /// A ledger over `num_links` links running `config`'s Algorithm 1 at
    /// every window close. `ring_capacity` bounds the retained window
    /// summaries; `alpha` is the cross-window [`LinkHealth`] EWMA factor.
    ///
    /// # Panics
    ///
    /// Panics when `ring_capacity` is 0 or `alpha` is outside `(0, 1]`.
    pub fn new(
        num_links: usize,
        config: Algorithm1Config,
        ring_capacity: usize,
        alpha: f64,
    ) -> Self {
        assert!(ring_capacity > 0, "ring must hold at least one window");
        Self {
            num_links,
            config,
            epoch: 0,
            window: BTreeMap::new(),
            live: VoteTally::new(num_links),
            ring: VecDeque::with_capacity(ring_capacity + 1),
            ring_capacity,
            health: LinkHealth::new(num_links, alpha),
            robustness: RobustnessCounters::default(),
        }
    }

    /// Absorbs one flow's evidence into the open window: casts its votes
    /// into the live tally and stores it at `key`. Re-absorbing a key
    /// supersedes the earlier evidence (its votes are retracted first),
    /// so at-least-once delivery cannot double-count a flow.
    pub fn absorb(&mut self, key: K, evidence: FlowEvidence) {
        self.robustness.absorbed += 1;
        if let Some(old) = self.window.get(&key) {
            self.live.retract(old, self.config.weight);
            self.robustness.superseded += 1;
        }
        self.live.cast(&evidence, self.config.weight);
        self.window.insert(key, evidence);
    }

    /// Retracts the evidence stored at `key` (a withdrawn report): its
    /// votes leave the live tally and the window forgets it. Returns the
    /// evidence, or `None` when the key was never absorbed this window.
    pub fn retract(&mut self, key: &K) -> Option<FlowEvidence> {
        let evidence = self.window.remove(key)?;
        self.live.retract(&evidence, self.config.weight);
        self.robustness.retracted += 1;
        Some(evidence)
    }

    /// Evidence items resident in the open window.
    pub fn resident(&self) -> usize {
        self.window.len()
    }

    /// The open window's index.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The live tally: votes cast so far in the open window, in arrival
    /// order — the between-closes monitoring snapshot. Arrival order can
    /// differ from canonical order by float ulps; window verdicts always
    /// come from [`close_window`](Self::close_window), which re-derives
    /// its tallies canonically.
    pub fn live_tally(&self) -> &VoteTally {
        &self.live
    }

    /// The cross-window link-health EWMA (the operator heat map).
    pub fn health(&self) -> &LinkHealth {
        &self.health
    }

    /// Cumulative absorb/discard accounting (never reset by a close):
    /// votes absorbed vs discarded-by-exclusion, the byzantine-axis
    /// observability counters.
    pub fn robustness(&self) -> RobustnessCounters {
        self.robustness
    }

    /// The open window's evidence volume grouped by `group_of(key)` —
    /// usually the host half of the pipeline's `(HostId, FiveTuple)`
    /// key. Keys arrive in canonical (ascending) order, so the result is
    /// sorted by group; feed it to
    /// [`volume_outliers`](crate::robustness::volume_outliers) to flag
    /// flooding hosts.
    pub fn volumes_by<H: Ord + Copy>(&self, group_of: impl Fn(&K) -> H) -> Vec<(H, u64)> {
        let mut volumes: BTreeMap<H, u64> = BTreeMap::new();
        for key in self.window.keys() {
            *volumes.entry(group_of(key)).or_insert(0) += 1;
        }
        volumes.into_iter().collect()
    }

    /// The retained window summaries, oldest first (at most the ring
    /// capacity).
    pub fn windows(&self) -> impl Iterator<Item = &WindowSummary> {
        self.ring.iter()
    }

    /// Closes the open window: runs the batch pipeline's exact two-pass
    /// analysis over the window's evidence in canonical order, feeds the
    /// detection into [`LinkHealth`] and the summary ring, and opens the
    /// next window. No flow record is consulted — evidence is all the
    /// analysis ever needed.
    pub fn close_window(&mut self) -> WindowAnalysis {
        // The evidence leaves the window by value (no re-clone); the
        // BTreeMap yields it key-ascending — the canonical order the
        // batch pipeline establishes by sorting reports.
        let evidence: Vec<FlowEvidence> = std::mem::take(&mut self.window).into_values().collect();

        // The §6 ordering, exactly as the batch pipeline runs it: a
        // conservative first pass (fixed threshold bar over all evidence)
        // licenses the noise filter; the final pass — Algorithm 1 with
        // its shrinking bar — runs on the failure-class evidence only.
        let conservative = detect(
            &evidence,
            self.num_links,
            &Algorithm1Config {
                threshold_base: ThresholdBase::Initial,
                ..self.config
            },
        );
        let classes = classify_flows(&evidence, &conservative.detected_links(), self.num_links);
        let failure_evidence: Vec<FlowEvidence> = evidence
            .iter()
            .zip(&classes)
            .filter(|(_, c)| **c == DropClass::Failure)
            .map(|(e, _)| e.clone())
            .collect();
        let detection = detect(&failure_evidence, self.num_links, &self.config);
        let unbounded_picks = detect(
            &failure_evidence,
            self.num_links,
            &Algorithm1Config {
                threshold_frac: 0.0,
                max_detections: 20,
                ..self.config
            },
        )
        .detected_links();

        self.health.absorb(&detection);
        self.ring.push_back(WindowSummary {
            epoch: self.epoch,
            evidence: evidence.len(),
            total_votes: detection.raw_tally.total(),
            detections: detection.detections.clone(),
            noise_flows: classes.iter().filter(|c| **c == DropClass::Noise).count(),
        });
        while self.ring.len() > self.ring_capacity {
            self.ring.pop_front();
        }

        let closed = self.epoch;
        self.epoch += 1;
        self.live = VoteTally::new(self.num_links);

        WindowAnalysis {
            epoch: closed,
            evidence,
            conservative,
            classes,
            detection,
            unbounded_picks,
        }
    }

    /// Drains `other`'s open window (and robustness counters) into this
    /// ledger. Keys present in both supersede — `self` retracts its copy
    /// and keeps `other`'s, counted like any re-absorption. `other` is
    /// left with an empty window and a zeroed live tally; its ring,
    /// health, and epoch index are untouched.
    ///
    /// The merge is associative, and when every key lands in exactly one
    /// source ledger (the sharding contract — routing is a pure function
    /// of the key), merging N shards and closing is bitwise-identical to
    /// absorbing everything into one ledger: [`close_window`] re-derives
    /// the analysis canonically from the merged `BTreeMap`, which is the
    /// plain set union.
    ///
    /// [`close_window`]: Self::close_window
    pub fn merge_window(&mut self, other: &mut VoteLedger<K>) {
        for (key, evidence) in std::mem::take(&mut other.window) {
            if let Some(old) = self.window.get(&key) {
                self.live.retract(old, self.config.weight);
                self.robustness.superseded += 1;
            }
            self.live.cast(&evidence, self.config.weight);
            self.window.insert(key, evidence);
        }
        let drained = std::mem::take(&mut other.robustness);
        self.robustness.absorbed += drained.absorbed;
        self.robustness.superseded += drained.superseded;
        self.robustness.retracted += drained.retracted;
        other.live = VoteTally::new(other.num_links);
    }

    /// The ledger's persistent cross-window state: epoch index, summary
    /// ring, health EWMA, robustness counters. Taken **at a window
    /// boundary** (right after [`close_window`](Self::close_window), when
    /// the open window is empty) it is the ledger's *complete* state — a
    /// collector that [`restore`](Self::restore)s it and replays
    /// subsequent windows closes them bit-identically to one that never
    /// went down. Open-window evidence is deliberately not captured:
    /// mid-window evidence is in flight by definition, and the failover
    /// contract is per-window.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            epoch: self.epoch,
            ring: self.ring.iter().cloned().collect(),
            health: self.health.clone(),
            robustness: self.robustness,
        }
    }

    /// Rebuilds a ledger from a [`snapshot`](Self::snapshot), resuming at
    /// the snapshot's epoch with an empty open window. The sizing
    /// parameters are [`VoteLedger::new`]'s and must match the original
    /// ledger's (they are configuration, not state, so the snapshot does
    /// not carry them).
    ///
    /// # Panics
    ///
    /// Panics when `ring_capacity` is 0, `alpha` is outside `(0, 1]`, or
    /// the snapshot's ring exceeds `ring_capacity`.
    pub fn restore(
        num_links: usize,
        config: Algorithm1Config,
        ring_capacity: usize,
        alpha: f64,
        snapshot: LedgerSnapshot,
    ) -> Self {
        let mut ledger = Self::new(num_links, config, ring_capacity, alpha);
        assert!(
            snapshot.ring.len() <= ring_capacity,
            "snapshot ring ({} windows) exceeds ring capacity {ring_capacity}",
            snapshot.ring.len()
        );
        ledger.epoch = snapshot.epoch;
        ledger.ring = snapshot.ring.into();
        ledger.health = snapshot.health;
        ledger.robustness = snapshot.robustness;
        ledger
    }
}

/// A [`VoteLedger`]'s serializable cross-window state — what
/// [`VoteLedger::snapshot`] captures at a window boundary and
/// [`VoteLedger::restore`] resumes from. The collector daemon persists
/// one of these per window close so a restart loses at most the open
/// window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerSnapshot {
    /// The next window's index (windows closed so far).
    pub epoch: u64,
    /// Retained window summaries, oldest first.
    pub ring: Vec<WindowSummary>,
    /// The cross-window link-health EWMA.
    pub health: LinkHealth,
    /// Cumulative absorb/discard accounting.
    pub robustness: RobustnessCounters,
}

/// A link-range-partitioned [`VoteLedger`]: each of N shards absorbs a
/// disjoint slice of the evidence (routed by first link, or handed out
/// one-shard-per-worker), so parallel workers fold evidence without a
/// shared lock. [`close_window`](Self::close_window) merges every shard
/// into the root ledger — associatively, via
/// [`VoteLedger::merge_window`] — and closes it there, which is
/// bitwise-identical to an unsharded ledger fed the same evidence (the
/// ledger proptests assert this for arbitrary partition counts and
/// absorb interleavings). The root carries the cross-window state: ring,
/// health EWMA, epoch index.
#[derive(Debug, Clone)]
pub struct ShardedVoteLedger<K: Ord> {
    root: VoteLedger<K>,
    shards: Vec<VoteLedger<K>>,
    num_links: usize,
}

impl<K: Ord> ShardedVoteLedger<K> {
    /// A sharded ledger with `shards` partitions over `num_links` links;
    /// the remaining parameters are [`VoteLedger::new`]'s.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is 0 (and per [`VoteLedger::new`] on a zero
    /// ring capacity or an out-of-range `alpha`).
    pub fn new(
        shards: usize,
        num_links: usize,
        config: Algorithm1Config,
        ring_capacity: usize,
        alpha: f64,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            root: VoteLedger::new(num_links, config, ring_capacity, alpha),
            shards: (0..shards)
                .map(|_| VoteLedger::new(num_links, config, ring_capacity, alpha))
                .collect(),
            num_links,
        }
    }

    /// Number of partitions.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `evidence` routes to: its first link's slice of the
    /// link range (evidence with no links goes to shard 0). A flow's
    /// path is stable within a window, so re-absorptions of a key land
    /// on the same shard and supersede correctly.
    pub fn shard_of(&self, evidence: &FlowEvidence) -> usize {
        let Some(first) = evidence.links.first() else {
            return 0;
        };
        ((first.index() * self.shards.len()) / self.num_links.max(1)).min(self.shards.len() - 1)
    }

    /// Absorbs one flow's evidence into its link-range shard.
    pub fn absorb(&mut self, key: K, evidence: FlowEvidence) {
        let shard = self.shard_of(&evidence);
        self.shards[shard].absorb(key, evidence);
    }

    /// Exclusive access to every shard — hand one `&mut` to each worker;
    /// any key-disjoint assignment of evidence to shards closes
    /// identically.
    pub fn shards_mut(&mut self) -> impl Iterator<Item = &mut VoteLedger<K>> {
        self.shards.iter_mut()
    }

    /// Evidence resident across all shards' open windows (plus any
    /// already merged into the root).
    pub fn resident(&self) -> usize {
        self.root.resident() + self.shards.iter().map(VoteLedger::resident).sum::<usize>()
    }

    /// Cumulative robustness counters summed over the root and every
    /// shard (shard counters drain into the root at each close).
    pub fn robustness(&self) -> RobustnessCounters {
        let mut total = self.root.robustness();
        for shard in &self.shards {
            let c = shard.robustness();
            total.absorbed += c.absorbed;
            total.superseded += c.superseded;
            total.retracted += c.retracted;
        }
        total
    }

    /// The root ledger's cross-window state (ring, health, epoch) and
    /// closed-window API.
    pub fn root(&self) -> &VoteLedger<K> {
        &self.root
    }

    /// Merges every shard into the root and closes the root's window —
    /// bitwise-identical to an unsharded close over the same evidence.
    pub fn close_window(&mut self) -> WindowAnalysis {
        for shard in &mut self.shards {
            self.root.merge_window(shard);
        }
        self.root.close_window()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voting::VoteWeight;

    type Key = (u32, u32);

    fn ev(links: &[u32], retx: u32) -> FlowEvidence {
        FlowEvidence::new(links.iter().map(|l| LinkId(*l)).collect(), retx)
    }

    fn ledger() -> VoteLedger<Key> {
        VoteLedger::new(64, Algorithm1Config::default(), 4, 0.3)
    }

    fn tally_bits(t: &VoteTally) -> Vec<u64> {
        let mut bits: Vec<u64> = (0..t.num_links())
            .map(|i| t.votes(LinkId(i as u32)).to_bits())
            .collect();
        bits.push(t.total().to_bits());
        bits
    }

    #[test]
    fn close_window_matches_batch_analysis() {
        // Absorbing in *any* order must close to the same analysis as
        // the batch two-pass over canonically-sorted evidence.
        let items: Vec<(Key, FlowEvidence)> = vec![
            ((2, 9), ev(&[5, 20], 3)),
            ((0, 4), ev(&[5, 21], 2)),
            ((1, 1), ev(&[7, 8], 1)),
            ((0, 2), ev(&[5, 22], 4)),
        ];
        let mut forward = ledger();
        for (k, e) in items.iter() {
            forward.absorb(*k, e.clone());
        }
        let mut reverse = ledger();
        for (k, e) in items.iter().rev() {
            reverse.absorb(*k, e.clone());
        }
        let a = forward.close_window();
        let b = reverse.close_window();
        assert_eq!(a.evidence, b.evidence, "canonical order is key order");
        assert_eq!(
            tally_bits(&a.detection.raw_tally),
            tally_bits(&b.detection.raw_tally)
        );
        assert_eq!(a.detection.detected_links(), b.detection.detected_links());
        assert_eq!(a.classes, b.classes);

        // And it equals the hand-run batch pipeline on sorted evidence.
        let mut sorted = items.clone();
        sorted.sort_by_key(|(k, _)| *k);
        let evidence: Vec<FlowEvidence> = sorted.iter().map(|(_, e)| e.clone()).collect();
        let conservative = detect(
            &evidence,
            64,
            &Algorithm1Config {
                threshold_base: ThresholdBase::Initial,
                ..Algorithm1Config::default()
            },
        );
        let classes = classify_flows(&evidence, &conservative.detected_links(), 64);
        assert_eq!(a.classes, classes);
        let failure: Vec<FlowEvidence> = evidence
            .iter()
            .zip(&classes)
            .filter(|(_, c)| **c == DropClass::Failure)
            .map(|(e, _)| e.clone())
            .collect();
        let batch = detect(&failure, 64, &Algorithm1Config::default());
        assert_eq!(
            tally_bits(&a.detection.raw_tally),
            tally_bits(&batch.raw_tally)
        );
        assert_eq!(a.detection.detected_links(), batch.detected_links());
    }

    #[test]
    fn windows_roll_and_ring_is_bounded() {
        let mut l = ledger();
        for w in 0..6u64 {
            assert_eq!(l.epoch(), w);
            l.absorb((0, w as u32), ev(&[5, 20], 2));
            l.absorb((1, w as u32), ev(&[5, 21], 2));
            let win = l.close_window();
            assert_eq!(win.epoch, w);
            assert_eq!(win.evidence.len(), 2);
            assert_eq!(l.resident(), 0, "window cleared at close");
        }
        // Ring capacity 4: only the last 4 summaries survive.
        let epochs: Vec<u64> = l.windows().map(|w| w.epoch).collect();
        assert_eq!(epochs, vec![2, 3, 4, 5]);
        // Persistent detection heats the health EWMA and its streak.
        assert!(l.health().score(LinkId(5)) > 0.0);
        assert_eq!(l.health().current_streak(LinkId(5)), 6);
    }

    #[test]
    fn reabsorbing_a_key_supersedes_instead_of_double_counting() {
        let mut l = ledger();
        l.absorb((0, 0), ev(&[3, 4], 1));
        l.absorb((0, 0), ev(&[3, 4], 5));
        assert_eq!(l.resident(), 1);
        assert!(
            (l.live_tally().total() - 1.0).abs() < 1e-9,
            "one flow's mass, not two"
        );
        let win = l.close_window();
        assert_eq!(win.evidence.len(), 1);
        assert_eq!(win.evidence[0].retransmissions, 5, "newest evidence wins");
    }

    #[test]
    fn robustness_counters_and_volumes_track_the_window() {
        let mut l = ledger();
        l.absorb((0, 0), ev(&[1, 2], 1));
        l.absorb((0, 1), ev(&[1, 2], 1));
        l.absorb((0, 1), ev(&[1, 2], 3)); // supersedes
        l.absorb((7, 0), ev(&[3, 4], 2));
        l.retract(&(7, 0)).expect("absorbed");
        l.retract(&(7, 0)); // miss: not counted
        let c = l.robustness();
        assert_eq!(c.absorbed, 4);
        assert_eq!(c.superseded, 1);
        assert_eq!(c.retracted, 1);
        assert_eq!(c.discarded(), 2);
        assert_eq!(c.net_absorbed(), 2);
        assert_eq!(l.volumes_by(|k| k.0), vec![(0, 2)]);
        // Counters are cumulative: a close resets the window, not them.
        l.close_window();
        assert_eq!(l.robustness(), c);
        assert!(l.volumes_by(|k| k.0).is_empty());
    }

    #[test]
    fn retract_returns_evidence_and_unwinds_votes() {
        let mut l = ledger();
        l.absorb((0, 0), ev(&[1, 2], 1));
        l.absorb((0, 1), ev(&[2, 3], 1));
        let got = l.retract(&(0, 0)).expect("was absorbed");
        assert_eq!(got, ev(&[1, 2], 1));
        assert!(l.retract(&(0, 0)).is_none(), "already gone");
        assert_eq!(l.resident(), 1);
        assert!((l.live_tally().votes(LinkId(2)) - 0.5).abs() < 1e-9);
        assert_eq!(l.live_tally().votes(LinkId(1)).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn live_tally_tracks_absorbed_mass() {
        let mut l = ledger();
        assert_eq!(l.live_tally().total(), 0.0);
        l.absorb((0, 0), ev(&[1, 2, 3, 4], 1));
        assert!((l.live_tally().votes(LinkId(1)) - 0.25).abs() < 1e-12);
        l.close_window();
        assert_eq!(l.live_tally().total(), 0.0, "live tally resets at close");
    }

    #[test]
    fn cast_weight_follows_config() {
        let mut l: VoteLedger<u32> = VoteLedger::new(
            8,
            Algorithm1Config {
                weight: VoteWeight::Unit,
                ..Algorithm1Config::default()
            },
            2,
            0.5,
        );
        l.absorb(0, ev(&[1, 2], 1));
        assert_eq!(l.live_tally().votes(LinkId(1)), 1.0);
    }

    #[test]
    #[should_panic(expected = "ring")]
    fn zero_ring_capacity_rejected() {
        let _: VoteLedger<u32> = VoteLedger::new(4, Algorithm1Config::default(), 0, 0.5);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        // Run two windows, snapshot at the boundary, keep running the
        // original; a restored ledger fed the same remaining windows must
        // close each one bit-identically (tally bits, ring, health,
        // epoch index) — the collector failover contract.
        let feed = |l: &mut VoteLedger<Key>, w: u32| {
            l.absorb((0, w), ev(&[5, 20], 2 + w));
            l.absorb((1, w), ev(&[5, 21], 1));
            l.absorb((2, w), ev(&[7, 8 + w % 3], 1));
        };
        let mut original = ledger();
        for w in 0..2 {
            feed(&mut original, w);
            original.close_window();
        }
        let snap = original.snapshot();
        assert_eq!(snap.epoch, 2);

        let mut restored = VoteLedger::restore(64, Algorithm1Config::default(), 4, 0.3, snap);
        assert_eq!(restored.epoch(), 2);
        for w in 2..5 {
            feed(&mut original, w);
            feed(&mut restored, w);
            let a = original.close_window();
            let b = restored.close_window();
            assert_eq!(a.evidence, b.evidence);
            assert_eq!(
                tally_bits(&a.detection.raw_tally),
                tally_bits(&b.detection.raw_tally)
            );
            assert_eq!(a.detection.detected_links(), b.detection.detected_links());
            assert_eq!(a.unbounded_picks, b.unbounded_picks);
        }
        assert_eq!(original.snapshot(), restored.snapshot());
    }

    #[test]
    fn snapshot_survives_json() {
        let mut l = ledger();
        l.absorb((0, 0), ev(&[5, 20], 2));
        l.absorb((1, 0), ev(&[5, 21], 3));
        l.close_window();
        let snap = l.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: LedgerSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
