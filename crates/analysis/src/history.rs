//! Cross-epoch link health: the operator's heat map.
//!
//! "This gives us a heat-map of our network which highlights the links
//! with the most impact to a given application/customer" (§2), and §9.2:
//! "The tally of votes on a given link provide a starting point for
//! deciding when such intervention is needed." A single epoch is 30
//! seconds; interventions (reboot, RMA, cable swap) are justified by
//! *persistent* patterns — "Any persistent pattern in such transient
//! failures is a cause for concern and is potentially actionable" (§1).
//!
//! [`LinkHealth`] folds per-epoch tallies into an exponentially weighted
//! score per link plus detection streaks, giving exactly that
//! prioritization signal: hot now (this epoch's votes), hot lately (the
//! EWMA), and chronically bad (consecutive-epoch detection streaks).

use crate::algorithm1::Algorithm1Output;
use serde::{Deserialize, Serialize};
use vigil_topology::LinkId;

/// Cross-epoch accumulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkHealth {
    /// EWMA smoothing factor per epoch (0 < α ≤ 1); higher = more
    /// reactive.
    alpha: f64,
    ewma: Vec<f64>,
    streak: Vec<u32>,
    longest_streak: Vec<u32>,
    epochs: u64,
}

impl LinkHealth {
    /// An accumulator over `num_links` links. `alpha` weighs the newest
    /// epoch (e.g. 0.3: ~3-epoch memory).
    pub fn new(num_links: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            alpha,
            ewma: vec![0.0; num_links],
            streak: vec![0; num_links],
            longest_streak: vec![0; num_links],
            epochs: 0,
        }
    }

    /// Folds one epoch's detection output in.
    pub fn absorb(&mut self, epoch: &Algorithm1Output) {
        self.epochs += 1;
        let detected: std::collections::HashSet<LinkId> =
            epoch.detections.iter().map(|d| d.link).collect();
        for i in 0..self.ewma.len() {
            let id = LinkId(i as u32);
            let votes = epoch.raw_tally.votes(id);
            self.ewma[i] = (1.0 - self.alpha) * self.ewma[i] + self.alpha * votes;
            if detected.contains(&id) {
                self.streak[i] += 1;
                self.longest_streak[i] = self.longest_streak[i].max(self.streak[i]);
            } else {
                self.streak[i] = 0;
            }
        }
    }

    /// Epochs absorbed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The smoothed vote score of a link.
    pub fn score(&self, link: LinkId) -> f64 {
        self.ewma[link.index()]
    }

    /// Consecutive epochs this link has been detected, as of the last
    /// absorbed epoch.
    pub fn current_streak(&self, link: LinkId) -> u32 {
        self.streak[link.index()]
    }

    /// The longest detection streak observed.
    pub fn longest_streak(&self, link: LinkId) -> u32 {
        self.longest_streak[link.index()]
    }

    /// The heat map: links ranked by smoothed score, descending, zero
    /// scores omitted (ties by id).
    pub fn heat_map(&self) -> Vec<(LinkId, f64)> {
        let mut v: Vec<(LinkId, f64)> = self
            .ewma
            .iter()
            .enumerate()
            .filter(|(_, s)| **s > 1e-12)
            .map(|(i, s)| (LinkId(i as u32), *s))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        v
    }

    /// Links whose detection streak has reached `min_epochs` — the
    /// "persistent pattern … potentially actionable" intervention list.
    pub fn actionable(&self, min_epochs: u32) -> Vec<LinkId> {
        assert!(min_epochs > 0);
        self.streak
            .iter()
            .enumerate()
            .filter(|(_, s)| **s >= min_epochs)
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::{detect, Algorithm1Config};
    use crate::evidence::FlowEvidence;

    fn epoch_with(links: &[u32]) -> Algorithm1Output {
        // Two voters per target link so the quorum admits them.
        let evidence: Vec<FlowEvidence> = links
            .iter()
            .flat_map(|l| {
                [
                    FlowEvidence::new(vec![LinkId(*l), LinkId(90 + *l)], 1),
                    FlowEvidence::new(vec![LinkId(*l), LinkId(80 + *l)], 1),
                ]
            })
            .collect();
        detect(&evidence, 100, &Algorithm1Config::default())
    }

    #[test]
    fn ewma_rises_and_decays() {
        let mut h = LinkHealth::new(100, 0.5);
        h.absorb(&epoch_with(&[5]));
        let after_one = h.score(LinkId(5));
        assert!(after_one > 0.0);
        h.absorb(&epoch_with(&[5]));
        assert!(h.score(LinkId(5)) > after_one, "persistent link heats up");
        h.absorb(&epoch_with(&[7]));
        h.absorb(&epoch_with(&[7]));
        assert!(
            h.score(LinkId(5)) < after_one + 1e-9,
            "quiet link cools down"
        );
    }

    #[test]
    fn streaks_track_consecutive_detections() {
        let mut h = LinkHealth::new(100, 0.3);
        h.absorb(&epoch_with(&[5]));
        h.absorb(&epoch_with(&[5]));
        h.absorb(&epoch_with(&[5]));
        assert_eq!(h.current_streak(LinkId(5)), 3);
        h.absorb(&epoch_with(&[7]));
        assert_eq!(h.current_streak(LinkId(5)), 0, "streak breaks");
        assert_eq!(h.longest_streak(LinkId(5)), 3, "history retained");
        assert_eq!(h.epochs(), 4);
    }

    #[test]
    fn actionable_threshold() {
        let mut h = LinkHealth::new(100, 0.3);
        for _ in 0..3 {
            h.absorb(&epoch_with(&[5, 9]));
        }
        h.absorb(&epoch_with(&[9]));
        assert_eq!(h.actionable(4), vec![LinkId(9)]);
        assert!(h.actionable(5).is_empty());
    }

    #[test]
    fn heat_map_ordering() {
        let mut h = LinkHealth::new(100, 0.5);
        h.absorb(&epoch_with(&[5]));
        h.absorb(&epoch_with(&[5, 9]));
        let map = h.heat_map();
        assert_eq!(map.first().map(|(l, _)| *l), Some(LinkId(5)));
        assert!(map.iter().any(|(l, _)| *l == LinkId(9)));
        assert!(map.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    #[should_panic(expected = "alpha must be")]
    fn invalid_alpha_rejected() {
        let _ = LinkHealth::new(4, 0.0);
    }
}
