//! Algorithm 1: finding the most problematic links (§5.1).
//!
//! ```text
//! B ← ∅
//! while v(lmax) ≥ 0.01·Σ v(li):
//!     lmax ← argmax over L ∖ B of v(li)
//!     B ← B ∪ {lmax}
//!     for li ∈ L ∖ B sharing a path with lmax: adjust v(li)
//! return B
//! ```
//!
//! The adjustment "iteratively pick\[s\] the most voted link lmax and
//! estimate\[s\] the portion of votes obtained by all other links due to
//! failures on lmax … by (i) assuming all flows having retransmissions and
//! going through lmax had drops due to lmax". With the actual per-flow
//! paths in hand (007 discovered them), that estimate is exact: every
//! not-yet-explained flow whose path contains `lmax` is attributed to
//! `lmax` and its votes are retracted from every link it touched. The
//! paper reports the adjustment cuts false positives by ~5 %; the
//! `ablation_voting` bench measures ours.
//!
//! The 1 % threshold "provides a reasonable trade-off between precision
//! and recall. Higher values reduce false positives but increase false
//! negatives" — the threshold sweep is also in the ablation bench.

use crate::evidence::FlowEvidence;
use crate::voting::{VoteTally, VoteWeight};
use serde::{Deserialize, Serialize};
use vigil_topology::{LinkId, LinkSet};

/// Which total the `threshold_frac` multiplies.
///
/// The default is [`ThresholdBase::Current`], the literal reading of
/// Algorithm 1's line 6 (`while v(lmax) ≥ 0.01·Σ v(li)` re-evaluated
/// each iteration): as detected links' flows are retracted, the bar
/// lowers and faint failures behind loud ones become detectable — which
/// is what keeps recall high with many unequal failures (Figure 12).
/// This is only safe because noise-class flows are withheld from the
/// vote pool *before* detection (`crate::noise`); without that filter
/// the shrinking bar would promote lone drops into false positives. The
/// fixed [`ThresholdBase::Initial`] bar is kept for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ThresholdBase {
    /// `Σ v(li)` re-evaluated each iteration (the paper's line 6).
    #[default]
    Current,
    /// The epoch's initial cast total (a fixed, stricter bar).
    Initial,
}

/// Algorithm 1 configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Algorithm1Config {
    /// Detection threshold as a fraction of total votes (paper: 0.01).
    pub threshold_frac: f64,
    /// Whether to run the vote adjustment (§5.1; ablation).
    pub adjust: bool,
    /// Vote weight scheme (ablation; paper: `1/h`).
    pub weight: VoteWeight,
    /// Threshold base (ablation).
    pub threshold_base: ThresholdBase,
    /// Safety cap on detections (a 007 deployment flags the top handful;
    /// `usize::MAX` disables).
    pub max_detections: usize,
    /// Minimum distinct (unexplained) voting flows a link needs to be
    /// detectable. The democratic quorum: one flow's lone drop is, by the
    /// paper's own definition of noise, indistinguishable from a failed
    /// link with a single victim — so a single voter must never mint a
    /// detection, no matter how small the epoch's vote total is. Default
    /// 2; set to 1 to reproduce the unguarded algorithm (ablation).
    pub min_voters: u32,
}

impl Default for Algorithm1Config {
    fn default() -> Self {
        Self {
            threshold_frac: 0.01,
            adjust: true,
            weight: VoteWeight::ReciprocalPathLength,
            threshold_base: ThresholdBase::default(),
            max_detections: usize::MAX,
            min_voters: 2,
        }
    }
}

/// One detected link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The link.
    pub link: LinkId,
    /// Its vote count at the moment it was picked (after earlier
    /// adjustments).
    pub votes: f64,
}

/// Algorithm 1's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Algorithm1Output {
    /// Detected links, in pick order (most problematic first).
    pub detections: Vec<Detection>,
    /// The tally after all adjustments (diagnostics / blame for residual
    /// flows).
    pub adjusted_tally: VoteTally,
    /// The raw, unadjusted tally (the ranking used for per-flow blame).
    pub raw_tally: VoteTally,
    /// Total vote mass cast into the tally (the democratic input).
    #[serde(default)]
    pub absorbed_votes: f64,
    /// Vote mass retracted by the adjustment pass — flows explained by a
    /// detected link whose votes were excluded from later picks. The
    /// absorbed/excluded split makes the tally's robustness observable:
    /// an adversary's spurious mass either stays in the residual (diluting
    /// thresholds) or is discarded here.
    #[serde(default)]
    pub excluded_votes: f64,
}

impl Algorithm1Output {
    /// The detected set as link ids.
    pub fn detected_links(&self) -> Vec<LinkId> {
        self.detections.iter().map(|d| d.link).collect()
    }
}

/// Runs Algorithm 1 over the epoch's evidence.
pub fn detect(
    evidence: &[FlowEvidence],
    num_links: usize,
    config: &Algorithm1Config,
) -> Algorithm1Output {
    let raw_tally = VoteTally::tally(evidence, num_links, config.weight);
    let mut tally = raw_tally.clone();
    let initial_total = tally.total();

    // Distinct-voter counts per link, maintained over unexplained flows.
    let mut voters = vec![0u32; num_links];
    for e in evidence {
        for l in &e.links {
            voters[l.index()] += 1;
        }
    }

    let mut explained = vec![false; evidence.len()];
    // Dense bitset over the link id space — the exclusion set B of the
    // paper's pseudocode, probed once per link per pick.
    let mut detected = LinkSet::new(num_links);
    let mut detections = Vec::new();

    while detections.len() < config.max_detections {
        let pick =
            tally.max_where(|l, _| !detected.contains(l) && voters[l.index()] >= config.min_voters);
        let Some((lmax, votes)) = pick else {
            break;
        };
        let base = match config.threshold_base {
            ThresholdBase::Current => tally.total(),
            ThresholdBase::Initial => initial_total,
        };
        // The epsilon floor guards against float dust left by
        // retraction; a "vote" of 1e-16 is not evidence.
        if votes < config.threshold_frac * base || votes < 1e-9 {
            break;
        }
        detections.push(Detection { link: lmax, votes });
        detected.insert(lmax);

        if config.adjust {
            for (i, ev) in evidence.iter().enumerate() {
                if !explained[i] && ev.links.contains(&lmax) {
                    explained[i] = true;
                    tally.retract(ev, config.weight);
                    for l in &ev.links {
                        voters[l.index()] -= 1;
                    }
                }
            }
        }
    }

    let excluded_votes = initial_total - tally.total();
    Algorithm1Output {
        detections,
        adjusted_tally: tally,
        raw_tally,
        absorbed_votes: initial_total,
        excluded_votes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(links: &[u32]) -> FlowEvidence {
        FlowEvidence::new(links.iter().map(|l| LinkId(*l)).collect(), 1)
    }

    fn cfg() -> Algorithm1Config {
        Algorithm1Config::default()
    }

    #[test]
    fn empty_evidence_detects_nothing() {
        let out = detect(&[], 10, &cfg());
        assert!(out.detections.is_empty());
    }

    #[test]
    fn single_failure_detected() {
        // 10 flows through link 5 (plus disjoint other links). The
        // pipeline hands Algorithm 1 *failure-class* evidence only (noise
        // flows are filtered upstream, §6 ordering).
        let evidence: Vec<FlowEvidence> = (0..10).map(|i| ev(&[5, 20 + i, 40 + i])).collect();
        let out = detect(&evidence, 80, &cfg());
        assert_eq!(out.detections[0].link, LinkId(5));
        // With adjustment, explaining link 5 retracts every flow; no
        // co-path link survives.
        assert_eq!(out.detections.len(), 1, "{:?}", out.detections);
    }

    #[test]
    fn quorum_blocks_lone_flows() {
        // A lone-drop flow alongside a real failure: with the default
        // voter quorum (min_voters = 2) the lone flow's links can never
        // be detected, however small the residual total gets.
        let mut evidence: Vec<FlowEvidence> = (0..10).map(|i| ev(&[5, 20 + i, 40 + i])).collect();
        evidence.push(ev(&[60, 61, 62]));
        let out = detect(&evidence, 80, &cfg());
        assert_eq!(out.detections[0].link, LinkId(5));
        assert_eq!(out.detections.len(), 1, "{:?}", out.detections);

        // Disabling the quorum (the ablation setting) reproduces the
        // unguarded algorithm, where the shrinking bar promotes the lone
        // flow's links into detections.
        let unguarded = detect(
            &evidence,
            80,
            &Algorithm1Config {
                min_voters: 1,
                ..cfg()
            },
        );
        assert!(
            unguarded.detections.len() > 1,
            "without the quorum, lone-drop votes survive: {:?}",
            unguarded.detections
        );
    }

    #[test]
    fn two_voters_meet_the_quorum() {
        // A faint failure witnessed by exactly two flows must still be
        // detectable (the quorum is 2, not more).
        let evidence = vec![ev(&[7, 20]), ev(&[7, 21])];
        let out = detect(&evidence, 30, &cfg());
        assert_eq!(out.detections.first().map(|d| d.link), Some(LinkId(7)));
    }

    #[test]
    fn adjustment_suppresses_co_path_links() {
        // All failed flows cross link 5; their other links share ids so
        // without adjustment those would accumulate comparable votes.
        let evidence: Vec<FlowEvidence> = (0..20).map(|i| ev(&[5, 20 + (i % 2)])).collect();
        let with = detect(&evidence, 30, &cfg());
        let without = detect(
            &evidence,
            30,
            &Algorithm1Config {
                adjust: false,
                ..cfg()
            },
        );
        assert_eq!(with.detections[0].link, LinkId(5));
        // With adjustment: links 20/21 retracted to 0, only link 5 stays.
        assert_eq!(with.detections.len(), 1, "{:?}", with.detections);
        // Without adjustment: 20 and 21 hold half the mass of link 5 and
        // cross the 1% threshold ⇒ false positives.
        assert!(
            without.detections.len() > 1,
            "no-adjust should over-detect: {:?}",
            without.detections
        );
    }

    #[test]
    fn threshold_gates_detection() {
        let evidence: Vec<FlowEvidence> = (0..100).map(|i| ev(&[i % 50, 50 + i % 50])).collect();
        // Uniform smear: no link clears a 10% bar.
        let out = detect(
            &evidence,
            100,
            &Algorithm1Config {
                threshold_frac: 0.10,
                ..cfg()
            },
        );
        assert!(out.detections.is_empty(), "{:?}", out.detections);
    }

    #[test]
    fn max_detections_caps() {
        let evidence: Vec<FlowEvidence> = (0..10)
            .flat_map(|i| std::iter::repeat_with(move || ev(&[i])).take(5))
            .collect();
        let out = detect(
            &evidence,
            10,
            &Algorithm1Config {
                max_detections: 3,
                ..cfg()
            },
        );
        assert_eq!(out.detections.len(), 3);
    }

    #[test]
    fn detections_ordered_by_pick_votes() {
        let mut evidence = Vec::new();
        for _ in 0..30 {
            evidence.push(ev(&[1, 10]));
        }
        for _ in 0..10 {
            evidence.push(ev(&[2, 11]));
        }
        let out = detect(&evidence, 20, &cfg());
        assert_eq!(out.detections[0].link, LinkId(1));
        assert!(out
            .detections
            .windows(2)
            .all(|w| w[0].votes >= w[1].votes - 1e-9));
    }

    #[test]
    fn initial_threshold_base_is_stricter() {
        // One strong failure plus a weak one: with Initial base the weak
        // one must clear 1% of the *original* total.
        let mut evidence = Vec::new();
        for _ in 0..500 {
            evidence.push(ev(&[1, 10]));
        }
        for _ in 0..3 {
            evidence.push(ev(&[2, 11]));
        }
        let current = detect(
            &evidence,
            20,
            &Algorithm1Config {
                threshold_base: ThresholdBase::Current,
                ..cfg()
            },
        );
        let initial = detect(
            &evidence,
            20,
            &Algorithm1Config {
                threshold_base: ThresholdBase::Initial,
                ..cfg()
            },
        );
        assert!(current.detections.len() >= initial.detections.len());
        // 3/503 < 1% of 503 ⇒ initial base rejects link 2.
        assert!(!initial.detected_links().contains(&LinkId(2)));
        // After explaining link 1's 500 flows, 3 votes ≥ 1% of 3 ⇒
        // current base accepts it.
        assert!(current.detected_links().contains(&LinkId(2)));
    }

    #[test]
    fn raw_tally_preserved_for_blame() {
        let evidence = vec![ev(&[1, 2]), ev(&[1, 3])];
        let out = detect(&evidence, 5, &cfg());
        assert!((out.raw_tally.votes(LinkId(1)) - 1.0).abs() < 1e-12);
        // adjusted tally may differ (flows explained by link 1 retracted)
        assert!(out.adjusted_tally.votes(LinkId(1)) <= out.raw_tally.votes(LinkId(1)));
    }

    #[test]
    fn absorbed_and_excluded_mass_account_for_the_adjustment() {
        // Two flows through link 1: detection explains both, so the whole
        // absorbed mass is excluded by the adjustment pass.
        let evidence = vec![ev(&[1, 2]), ev(&[1, 3])];
        let out = detect(&evidence, 5, &cfg());
        assert!((out.absorbed_votes - 2.0).abs() < 1e-12);
        assert!((out.excluded_votes - 2.0).abs() < 1e-12);
        // Without adjustment nothing is ever excluded.
        let no_adjust = detect(
            &evidence,
            5,
            &Algorithm1Config {
                adjust: false,
                ..cfg()
            },
        );
        assert_eq!(no_adjust.excluded_votes, 0.0);
        assert!((no_adjust.absorbed_votes - 2.0).abs() < 1e-12);
    }
}
