//! Streaming service-mode benchmark: events/second through the typed
//! hub and — the constant-memory claim, measured — the peak number of
//! simultaneously-resident flow records across a multi-epoch run.
//!
//! Writes `BENCH_stream.json` at the repository root. The headline
//! number is `peak_resident_flows` against `epoch_flow_count`: the batch
//! pipeline materializes every flow of an epoch before analysis, so any
//! peak below one epoch's flow count is memory the streaming refactor
//! returned (CI gates on exactly that in fast mode). Throughput numbers
//! on this container are indicative only — the bench host is 1-core
//! (`cores_available` is recorded); judge events/sec on multicore
//! hardware.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vigil::prelude::*;
use vigil_fabric::EpochScratch;

fn main() {
    let fast = std::env::var("VIGIL_FAST").is_ok_and(|v| v == "1");
    // Fast mode shrinks the fabric and the horizon; the full run uses
    // the paper's simulation topology for a production-shaped epoch.
    let (params, epochs) = if fast {
        (ClosParams::tiny(), 5usize)
    } else {
        (ClosParams::paper_sim(), 10usize)
    };
    let epochs = std::env::var("VIGIL_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(epochs);

    let topo = ClosTopology::new(params, 11).expect("valid bench topology");
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let faults = FaultPlan {
        failure_rate: RateRange::fixed(0.01),
        ..FaultPlan::paper_default(2)
    }
    .build(&topo, &mut rng);
    let cfg = RunConfig::default();

    let mut session = StreamSession::new(
        &topo,
        &cfg,
        StreamTuning::default(),
        RetainPolicy::EvidenceOnly,
    );
    let mut scratch = EpochScratch::new();
    let started = std::time::Instant::now();
    let mut evidence_per_window = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let run = session.run_window(&faults, &mut rng, &mut scratch);
        evidence_per_window.push(run.evidence.len() as u64);
    }
    session.shutdown();
    let wall = started.elapsed().as_secs_f64();
    let stats = session.stats().clone();

    let epoch_flow_count = stats.flows / stats.windows.max(1);
    let resident_fraction = stats.peak_resident_flows as f64 / epoch_flow_count.max(1) as f64;
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    let doc = serde_json::json!({
        "bench": "stream_throughput",
        "fast_mode": fast,
        "topology": format!("{params:?}"),
        "windows": stats.windows,
        "flows": stats.flows,
        "epoch_flow_count": epoch_flow_count,
        "hub_events": stats.events,
        "evidence": stats.evidence,
        "evidence_per_window": evidence_per_window,
        "delivered": stats.delivered,
        "shed": stats.shed,
        "peak_resident_flows": stats.peak_resident_flows,
        "resident_fraction_of_epoch": resident_fraction,
        "wall_seconds": wall,
        "flows_per_sec": stats.flows as f64 / wall.max(1e-9),
        "events_per_sec": stats.events as f64 / wall.max(1e-9),
        "cores_available": cores,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    let json = serde_json::to_string_pretty(&doc).expect("serialize BENCH_stream.json");
    std::fs::write(path, json).expect("write BENCH_stream.json");

    println!(
        "stream_throughput: {} window(s) × {} flow(s), peak resident {} \
         ({:.4} of an epoch), {:.0} flows/s, {:.0} events/s, shed {} \
         -> BENCH_stream.json [{} core(s)]",
        stats.windows,
        epoch_flow_count,
        stats.peak_resident_flows,
        resident_fraction,
        stats.flows as f64 / wall.max(1e-9),
        stats.events as f64 / wall.max(1e-9),
        stats.shed,
        cores,
    );
    assert!(
        stats.peak_resident_flows < epoch_flow_count,
        "constant-memory regression: peak resident {} flow records reached a \
         full epoch's {}",
        stats.peak_resident_flows,
        epoch_flow_count
    );
}
