//! Streaming service-mode benchmark: events/second through the typed
//! hub, the constant-memory claim (peak simultaneously-resident flow
//! records across a multi-epoch run), and — since the unified epoch
//! pool — the thread-scaling curve of the streaming experiment.
//!
//! Writes `BENCH_stream.json` at the repository root. The headline
//! number is `peak_resident_flows` against `epoch_flow_count`: the batch
//! pipeline materializes every flow of an epoch before analysis, so any
//! peak below one epoch's flow count is memory the streaming refactor
//! returned (CI gates on exactly that in fast mode). The `threads` array
//! records per-width wall clock and `flows_per_sec` at power-of-two
//! widths up to `--threads N` (or `VIGIL_THREADS`, or every available
//! core); every width produces byte-identical reports, so the axis
//! measures pure scheduling. Throughput numbers on this container are
//! indicative only — the bench host records `cores_available`; judge
//! events/sec and scaling on multicore hardware.

use vigil::prelude::*;
use vigil::ExperimentConfig;

fn max_threads() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            let v = args
                .next()
                .expect("--threads takes a value")
                .parse()
                .expect("--threads must be an integer");
            return std::cmp::max(v, 1);
        }
    }
    if let Ok(v) = std::env::var("VIGIL_THREADS") {
        return v
            .parse::<usize>()
            .expect("VIGIL_THREADS must be an integer")
            .max(1);
    }
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

fn main() {
    let fast = std::env::var("VIGIL_FAST").is_ok_and(|v| v == "1");
    // Fast mode shrinks the fabric and the horizon; the full run uses
    // the paper's simulation topology for a production-shaped epoch.
    let (params, epochs) = if fast {
        (ClosParams::tiny(), 5usize)
    } else {
        (ClosParams::paper_sim(), 10usize)
    };
    let epochs = std::env::var("VIGIL_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(epochs);

    let cfg = ExperimentConfig {
        name: "stream-throughput".into(),
        params,
        faults: FaultPlan {
            failure_rate: RateRange::fixed(0.01),
            ..FaultPlan::paper_default(2)
        },
        run: RunConfig::default(),
        epochs,
        trials: 1,
        seed: 5,
    };

    // Power-of-two widths up to the requested maximum (always including
    // the maximum itself so `--threads 6` measures 1, 2, 4, 6).
    let top = max_threads();
    let mut widths = vec![1usize];
    while widths.last().copied().unwrap_or(1) * 2 <= top {
        widths.push(widths.last().unwrap() * 2);
    }
    if widths.last() != Some(&top) {
        widths.push(top);
    }

    let tuning = StreamTuning::default();
    let mut axis = Vec::with_capacity(widths.len());
    let mut base: Option<(ExperimentReport, StreamStats, f64)> = None;
    let mut base_wall = f64::NAN;
    for &w in &widths {
        let engine = SweepEngine::new(w);
        let started = std::time::Instant::now();
        let (report, stats) = stream_experiment(&cfg, &engine, &tuning);
        let wall = started.elapsed().as_secs_f64();
        assert_eq!(stats.shed, 0, "bounded hub shed evidence at {w} thread(s)");
        if w == 1 {
            base_wall = wall;
        }
        axis.push(serde_json::json!({
            "threads": w,
            "wall_seconds": wall,
            "flows_per_sec": stats.flows as f64 / wall.max(1e-9),
            "events_per_sec": stats.events as f64 / wall.max(1e-9),
            "speedup_vs_1": base_wall / wall.max(1e-9),
        }));
        if base.is_none() {
            base = Some((report, stats, wall));
        }
    }
    let (report, stats, wall) = base.expect("at least one width ran");
    let evidence_per_window: Vec<u64> = report
        .epochs
        .iter()
        .map(|e| e.traced_flows as u64)
        .collect();

    let epoch_flow_count = stats.flows / stats.windows.max(1);
    let resident_fraction = stats.peak_resident_flows as f64 / epoch_flow_count.max(1) as f64;
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    let doc = serde_json::json!({
        "bench": "stream_throughput",
        "fast_mode": fast,
        "topology": format!("{params:?}"),
        "windows": stats.windows,
        "flows": stats.flows,
        "epoch_flow_count": epoch_flow_count,
        "hub_events": stats.events,
        "evidence": stats.evidence,
        "evidence_per_window": evidence_per_window,
        "delivered": stats.delivered,
        "shed": stats.shed,
        "peak_resident_flows": stats.peak_resident_flows,
        "resident_fraction_of_epoch": resident_fraction,
        "wall_seconds": wall,
        "flows_per_sec": stats.flows as f64 / wall.max(1e-9),
        "events_per_sec": stats.events as f64 / wall.max(1e-9),
        "threads": axis,
        "cores_available": cores,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    let json = serde_json::to_string_pretty(&doc).expect("serialize BENCH_stream.json");
    std::fs::write(path, json).expect("write BENCH_stream.json");

    println!(
        "stream_throughput: {} window(s) × {} flow(s), peak resident {} \
         ({:.4} of an epoch), {:.0} flows/s at 1 thread, shed {} \
         -> BENCH_stream.json [{} core(s); widths {:?}]",
        stats.windows,
        epoch_flow_count,
        stats.peak_resident_flows,
        resident_fraction,
        stats.flows as f64 / wall.max(1e-9),
        stats.shed,
        cores,
        widths,
    );
    assert!(
        stats.peak_resident_flows < epoch_flow_count,
        "constant-memory regression: peak resident {} flow records reached a \
         full epoch's {}",
        stats.peak_resident_flows,
        epoch_flow_count
    );
}
