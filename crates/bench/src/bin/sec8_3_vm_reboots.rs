//! §8.3: VM reboot diagnosis — 007 explains every one of 281 reboots the
//! existing monitoring could not.
//!
//! Paper's cause breakdown of the 281:
//! * 262 — transient drops on the host↔ToR link (some correlated with
//!   host CPU saturation);
//! * 2   — high drop rates on the ToR itself;
//! * 15  — link endpoints undergoing configuration updates;
//! * 2   — link flapping.
//!
//! Plus the day-in-one-cluster statistics: 0.45 ± 0.12 links blamed per
//! epoch; of the links dropping packets, 48 % host↔ToR, 24 % T1↔ToR, 6 %
//! T2↔T1.
//!
//! The reproduction replays the same incident mix and checks 007 finds a
//! cause of the right class for each reboot. Incidents (and the routine
//! day's epochs) are independent — each is one sweep-engine task.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vigil::prelude::*;
use vigil::sweep::task_rng;
use vigil_bench::{banner, print_engine, write_json, Scale};
use vigil_fabric::faults::LinkFaults;
use vigil_stats::Summary;
use vigil_topology::Node;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cause {
    HostTorTransient,
    BadTor,
    ConfigUpdate,
    LinkFlap,
}

/// One replayed incident's outcome.
struct Incident {
    detected: f64,
    /// `(kind_matches_cause, tier)` of the top blamed link, when found.
    blamed: Option<(bool, usize)>,
}

fn main() {
    banner(
        "sec8_3",
        "VM reboot diagnosis: cause classes for 281 unexplained reboots",
        "§8.3: 262 host-ToR transients, 2 bad ToRs, 15 config updates, 2 flaps; 0.45±0.12 links/epoch",
    );
    let scale = Scale::resolve(1, 1);
    let engine = SweepEngine::from_env();
    print_engine(&engine);
    let incidents: usize = if scale.fast { 60 } else { 281 };

    let topo = ClosTopology::new(ClosParams::tiny(), 83).expect("valid");
    let cfg = RunConfig {
        traffic: TrafficSpec {
            conns_per_host: ConnCount::Fixed(25),
            ..TrafficSpec::paper_default()
        },
        baselines: Baselines {
            integer: false,
            binary: false,
            ..Baselines::default()
        },
        ..RunConfig::default()
    };

    let replayed = engine.run_tasks(incidents, |incident| {
        let mut rng = task_rng(0x83, incident);
        // The paper's empirical cause mix: 262/2/15/2 out of 281.
        let cause = match incident * 281 / incidents {
            0..=261 => Cause::HostTorTransient,
            262..=263 => Cause::BadTor,
            264..=278 => Cause::ConfigUpdate,
            _ => Cause::LinkFlap,
        };

        let mut faults = LinkFaults::new(topo.num_links());
        faults.set_noise(RateRange::PAPER_NOISE, &mut rng);
        let expected_kinds: Vec<LinkKind> = match cause {
            Cause::HostTorTransient => {
                let host = vigil_topology::HostId(rng.gen_range(0..topo.num_hosts() as u32));
                let tor = topo.host_tor(host);
                let up = topo
                    .link_between(Node::Host(host), Node::Switch(tor))
                    .unwrap();
                let down = topo
                    .link_between(Node::Switch(tor), Node::Host(host))
                    .unwrap();
                faults.fail_link(up, rng.gen_range(0.05..0.4));
                faults.fail_link(down, rng.gen_range(0.01..0.1));
                vec![LinkKind::HostToTor, LinkKind::TorToHost]
            }
            Cause::BadTor => {
                // Every link out of one ToR degrades (bad ASIC).
                let tor = topo.tor(
                    rng.gen_range(0..topo.params().npod),
                    rng.gen_range(0..topo.params().n0),
                );
                for l in topo.links() {
                    if l.from == Node::Switch(tor) {
                        faults.fail_link(l.id, rng.gen_range(0.01..0.05));
                    }
                }
                vec![LinkKind::TorToHost, LinkKind::TorToT1]
            }
            Cause::ConfigUpdate => {
                // Reconvergence burst on a fabric link under maintenance.
                let fabric_links: Vec<_> = topo
                    .links()
                    .iter()
                    .filter(|l| l.kind.is_level1())
                    .map(|l| l.id)
                    .collect();
                let l = fabric_links[rng.gen_range(0..fabric_links.len())];
                faults.fail_link(l, rng.gen_range(0.05..0.3));
                vec![LinkKind::TorToT1, LinkKind::T1ToTor]
            }
            Cause::LinkFlap => {
                // A flapping level-2 link: up/down cycling ≈ heavy loss.
                let fabric_links: Vec<_> = topo
                    .links()
                    .iter()
                    .filter(|l| l.kind.is_level2())
                    .map(|l| l.id)
                    .collect();
                let l = fabric_links[rng.gen_range(0..fabric_links.len())];
                faults.fail_link(l, rng.gen_range(0.3..0.7));
                vec![LinkKind::T1ToT2, LinkKind::T2ToT1]
            }
        };

        let run = vigil::run_epoch(&topo, &faults, &cfg, &mut rng);
        let blamed = run.detection.detections.first().map(|top| {
            let kind = topo.link(top.link).kind;
            let tier = if kind.is_host_link() {
                0
            } else if kind.is_level1() {
                1
            } else {
                2
            };
            (expected_kinds.contains(&kind), tier)
        });
        Incident {
            detected: run.detection.detections.len() as f64,
            blamed,
        }
    });

    let mut explained = 0usize;
    let mut class_hits = 0usize;
    let mut per_epoch_detected = Summary::new();
    let mut tier_counts = [0u64; 3]; // host↔ToR, level-1, level-2
    for incident in &replayed {
        per_epoch_detected.record(incident.detected);
        if let Some((class_hit, tier)) = incident.blamed {
            explained += 1;
            class_hits += usize::from(class_hit);
            tier_counts[tier] += 1;
        }
    }

    println!("\nincidents replayed: {incidents}");
    println!(
        "007 produced a cause: {}/{} = {:.1}%   (paper: a link found in each of 281)",
        explained,
        incidents,
        explained as f64 / incidents as f64 * 100.0
    );
    println!(
        "cause class matches the injected class: {}/{} = {:.1}%",
        class_hits,
        explained,
        class_hits as f64 / explained.max(1) as f64 * 100.0
    );
    let incident_tiers: u64 = tier_counts.iter().sum();
    println!("\nblamed-link tier shares over the reboot incidents:");
    for (i, label) in ["host<->ToR", "ToR<->T1", "T1<->T2"].iter().enumerate() {
        println!(
            "  {label:>12}: {:>5.1}%",
            tier_counts[i] as f64 / incident_tiers.max(1) as f64 * 100.0
        );
    }

    // ---- "one cluster, one day" statistics (§8.3's closing numbers) ----
    // Routine epochs with a production-like background fault mix: most
    // epochs clean, occasional lossy links across tiers (the paper's
    // observed blame mix: 48% server-ToR — 38% from one recurrently bad
    // ToR — 24% T1-ToR, 6% T2-T1).
    let day_epochs = if scale.fast { 40 } else { 150 };

    // The recurring bad ToR of the paper's account ("38% were due to a
    // single ToR switch that was eventually taken out for repair").
    let mut setup_rng = ChaCha8Rng::seed_from_u64(0xDA_83);
    let bad_tor_host = vigil_topology::HostId(setup_rng.gen_range(0..topo.num_hosts() as u32));

    let day = engine.run_tasks(day_epochs, |epoch| {
        // Distinct master from the 0xDA_83 setup rng: task_rng(m, 0) == m's
        // stream, which would replay the bad-ToR selection draw.
        let mut rng = task_rng(0xA0_DA_83, epoch);
        let mut faults = LinkFaults::new(topo.num_links());
        faults.set_noise(RateRange::PAPER_NOISE, &mut rng);
        let roll: f64 = rng.gen();
        if roll < 0.25 {
            // quiet epoch
        } else if roll < 0.50 {
            // the recurring ToR's server links act up again
            let tor = topo.host_tor(bad_tor_host);
            let host = topo
                .hosts_under(tor)
                .nth(rng.gen_range(0..usize::from(topo.params().hosts_per_tor)))
                .expect("rack has hosts");
            let up = topo
                .link_between(Node::Host(host), Node::Switch(tor))
                .unwrap();
            faults.fail_link(up, rng.gen_range(0.02..0.2));
        } else if roll < 0.62 {
            // other server-ToR transients
            let host = vigil_topology::HostId(rng.gen_range(0..topo.num_hosts() as u32));
            let up = topo
                .link_between(Node::Host(host), Node::Switch(topo.host_tor(host)))
                .unwrap();
            faults.fail_link(up, rng.gen_range(0.02..0.2));
        } else if roll < 0.87 {
            // level-1 failures
            let l1: Vec<_> = topo
                .links()
                .iter()
                .filter(|l| l.kind == LinkKind::T1ToTor || l.kind == LinkKind::TorToT1)
                .map(|l| l.id)
                .collect();
            faults.fail_link(l1[rng.gen_range(0..l1.len())], rng.gen_range(0.005..0.05));
        } else {
            // level-2 failures
            let l2: Vec<_> = topo
                .links()
                .iter()
                .filter(|l| l.kind.is_level2())
                .map(|l| l.id)
                .collect();
            faults.fail_link(l2[rng.gen_range(0..l2.len())], rng.gen_range(0.005..0.05));
        }
        let run = vigil::run_epoch(&topo, &faults, &cfg, &mut rng);
        let mut tiers = [0u64; 6]; // HostToTor, TorToHost, TorToT1, T1ToTor, T1ToT2, T2ToT1
        for d in &run.detection.detections {
            let idx = match topo.link(d.link).kind {
                LinkKind::HostToTor => 0,
                LinkKind::TorToHost => 1,
                LinkKind::TorToT1 => 2,
                LinkKind::T1ToTor => 3,
                LinkKind::T1ToT2 => 4,
                LinkKind::T2ToT1 => 5,
            };
            tiers[idx] += 1;
        }
        (run.detection.detections.len() as f64, tiers)
    });

    let mut day_detected = Summary::new();
    let mut day_tiers = [0u64; 6];
    for (detected, tiers) in day {
        day_detected.record(detected);
        for (slot, n) in day_tiers.iter_mut().zip(tiers) {
            *slot += n;
        }
    }
    println!("\none simulated day of routine epochs ({day_epochs} epochs):");
    println!(
        "  links blamed per epoch: {:.2} ± {:.2}   (paper: 0.45 ± 0.12)",
        day_detected.mean(),
        day_detected.ci95_half_width().unwrap_or(f64::NAN)
    );
    let day_total: u64 = day_tiers.iter().sum();
    let share = |idx: &[usize]| {
        idx.iter().map(|i| day_tiers[*i]).sum::<u64>() as f64 / day_total.max(1) as f64 * 100.0
    };
    println!(
        "  blamed-link shares: server-ToR {:.0}%  T1-ToR {:.0}%  T2-T1 {:.0}%  other {:.0}%",
        share(&[0, 1]),
        share(&[3]),
        share(&[5]),
        share(&[2, 4]),
    );
    println!("  (paper: 48% server-ToR, 24% T1-ToR, 6% T2-T1, rest other)");
    write_json(
        "sec8_3",
        &serde_json::json!({
            "incidents": incidents,
            "explained": explained,
            "class_hits": class_hits,
            "detected_mean": per_epoch_detected.mean(),
            "tier_counts": tier_counts.to_vec(),
        }),
    );
}
