//! §6.7: effect of network size.
//!
//! Paper results:
//! * single-failure accuracy at 1/2/3/4 pods: 98/92/91/90 % for 007 vs
//!   94/72/79/77 % for the optimization;
//! * Algorithm 1 recall ≥ 98 % up to 6 pods (85 % at 7), precision 100 %
//!   for all pod counts;
//! * with ≥ 30 failed links, per-flow accuracy is essentially unchanged
//!   (e.g. 98.01 % at 30 failures).

use vigil::prelude::*;
use vigil_bench::{
    accuracy_pct, banner, precision_pct, print_engine, recall_pct, sweep_table, Scale, SeriesRow,
};

fn main() {
    banner(
        "sec6_7",
        "accuracy & detection vs network size (pods), plus the 30-failure point",
        "§6.7: 007 98/92/91/90% vs opt 94/72/79/77%; recall ≥98% to 6 pods",
    );
    let scale = Scale::resolve(3, 1);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    println!("\nsingle failure, accuracy by pod count:\n");
    let max_pods = if scale.fast { 3 } else { 4 };
    let spec = SweepSpec::new(
        "sec6_7_pods",
        "pods",
        (1..=max_pods).collect(),
        move |&pods| {
            let mut cfg = scale.apply(scenarios::sec6_7_network_size(pods, 1));
            // scale.apply may have shrunk params for fast mode; re-apply pods.
            cfg.params.npod = pods;
            cfg
        },
    );
    sweep_table(&engine, &spec, |&pods, report| {
        let integer = report.integer.as_ref().expect("integer enabled");
        SeriesRow {
            x: f64::from(pods),
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
                ("007 prec %".into(), precision_pct(&report.vigil)),
                ("007 rec %".into(), recall_pct(&report.vigil)),
            ],
        }
    });

    println!("\nmany simultaneous failures (per-flow accuracy):\n");
    let spec30 = SweepSpec::new("sec6_7_30", "#failed links", vec![30u32, 50], move |&k| {
        let mut cfg = scale.apply(scenarios::sec6_7_network_size(2, k));
        cfg.faults.failure_rate = RateRange { lo: 5e-4, hi: 1e-2 };
        cfg
    });
    sweep_table(&engine, &spec30, |&k, report| {
        let integer = report.integer.as_ref().expect("integer enabled");
        SeriesRow {
            x: f64::from(k),
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
            ],
        }
    });
    println!("\npaper: 98.01% accuracy in an example with 30 failed links.");
}
