//! Figure 10: Algorithm 1 on a single failure — precision (a) and
//! recall (b) vs. the failed link's drop rate, for 007, the integer
//! program and the binary program.
//!
//! Paper result: 007 outperforms both optimizations "as it does not
//! require a fully specified set of equations to provide a best guess".

use vigil::prelude::*;
use vigil_bench::{banner, precision_pct, print_engine, recall_pct, sweep_table, Scale, SeriesRow};

fn main() {
    banner(
        "fig10",
        "Algorithm 1 precision/recall vs drop rate (single failure)",
        "§6.6 Figure 10: 007 above both optimizations across the sweep",
    );
    let scale = Scale::resolve(5, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    let spec = SweepSpec::new(
        "fig10",
        "drop rate (%)",
        vec![1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2],
        move |&rate| scale.apply(scenarios::fig10_detection_single(rate)),
    );
    sweep_table(&engine, &spec, |&rate, report| {
        let integer = report.integer.as_ref().expect("integer enabled");
        let binary = report.binary.as_ref().expect("binary enabled");
        SeriesRow {
            x: rate * 100.0,
            values: vec![
                ("007 prec %".into(), precision_pct(&report.vigil)),
                ("007 rec %".into(), recall_pct(&report.vigil)),
                ("int prec %".into(), precision_pct(integer)),
                ("int rec %".into(), recall_pct(integer)),
                ("bin prec %".into(), precision_pct(binary)),
                ("bin rec %".into(), recall_pct(binary)),
            ],
        }
    });
    println!("\npaper: all methods' recall rises with the drop rate; 007's precision");
    println!("stays near 100% while the programs over-blame under noise.");
}
