//! Figure 5: accuracy while pushing drop rates *below* Theorem 2's
//! conservative bounds. (a) single failure, rate swept 0.01–1 % (with the
//! paper's inset zooming 0–0.1 %); (b) 2–14 failures with rates across
//! the default 0.01–1 % spread.
//!
//! Paper result: accuracy stays high (on par with the optimization) even
//! where the theorem is silent.

use vigil::prelude::*;
use vigil_bench::{accuracy_pct, banner, print_engine, sweep_table, Scale, SeriesRow};

fn main() {
    banner(
        "fig05",
        "accuracy vs failed-link drop rate (beyond the theorem's bounds)",
        "§6.2 Figure 5: high accuracy down to ~0.01% drop rates",
    );
    let scale = Scale::resolve(5, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    println!("\n(a) single failure, drop-rate sweep (inset points marked *):\n");
    let spec_a = SweepSpec::new(
        "fig05a",
        "drop rate (%)",
        vec![1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2],
        move |&rate| scale.apply(scenarios::fig05_single(rate)),
    );
    sweep_table(&engine, &spec_a, |&rate, report| {
        let integer = report.integer.as_ref().expect("integer enabled");
        SeriesRow {
            x: rate * 100.0, // percent, like the figure's axis
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
            ],
        }
    });

    println!("\n(b) multiple failures (rates uniform 0.01–1%):\n");
    let spec_b = SweepSpec::new(
        "fig05b",
        "#failed links",
        vec![2u32, 6, 10, 14],
        move |&k| scale.apply(scenarios::fig05_multi(k)),
    );
    sweep_table(&engine, &spec_b, |&k, report| {
        let integer = report.integer.as_ref().expect("integer enabled");
        SeriesRow {
            x: f64::from(k),
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
            ],
        }
    });

    println!("\npaper: 007 ≈ optimization accuracy on (a); on (b) 007 stays high while");
    println!("the optimization's confidence intervals blow up with many failures.");
}
