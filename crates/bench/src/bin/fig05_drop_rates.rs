//! Figure 5: accuracy while pushing drop rates *below* Theorem 2's
//! conservative bounds. (a) single failure, rate swept 0.01–1 % (with the
//! paper's inset zooming 0–0.1 %); (b) 2–14 failures with rates across
//! the default 0.01–1 % spread.
//!
//! Paper result: accuracy stays high (on par with the optimization) even
//! where the theorem is silent.

use vigil::prelude::*;
use vigil_bench::{accuracy_pct, banner, print_table, write_json, Scale, SeriesRow};

fn main() {
    banner(
        "fig05",
        "accuracy vs failed-link drop rate (beyond the theorem's bounds)",
        "§6.2 Figure 5: high accuracy down to ~0.01% drop rates",
    );
    let scale = Scale::resolve(5, 2);

    println!("\n(a) single failure, drop-rate sweep (inset points marked *):\n");
    let mut rows_a = Vec::new();
    for &rate in &[1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2] {
        let cfg = scale.apply(scenarios::fig05_single(rate));
        let report = run_experiment(&cfg);
        let integer = report.integer.as_ref().expect("integer enabled");
        rows_a.push(SeriesRow {
            x: rate * 100.0, // percent, like the figure's axis
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
            ],
        });
    }
    print_table("drop rate (%)", &rows_a);

    println!("\n(b) multiple failures (rates uniform 0.01–1%):\n");
    let mut rows_b = Vec::new();
    for k in [2u32, 6, 10, 14] {
        let cfg = scale.apply(scenarios::fig05_multi(k));
        let report = run_experiment(&cfg);
        let integer = report.integer.as_ref().expect("integer enabled");
        rows_b.push(SeriesRow {
            x: f64::from(k),
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
            ],
        });
    }
    print_table("#failed links", &rows_b);

    println!("\npaper: 007 ≈ optimization accuracy on (a); on (b) 007 stays high while");
    println!("the optimization's confidence intervals blow up with many failures.");
    write_json("fig05a", &rows_a);
    write_json("fig05b", &rows_b);
}
