//! Figure 4: Algorithm 1's precision (a) and recall (b) vs. number of
//! failed links, against the integer (4) and binary (3) programs, in the
//! Theorem-2 regime.
//!
//! Paper result: 007 detects failed links with high precision and recall
//! even at low drop rates; the binary program trails badly under noise.

use vigil::prelude::*;
use vigil_bench::{banner, precision_pct, print_engine, recall_pct, sweep_table, Scale, SeriesRow};

fn main() {
    banner(
        "fig04",
        "Algorithm 1 precision/recall vs #failed links",
        "§6.1 Figure 4: high precision & recall for 007; binary optimization inferior",
    );
    let scale = Scale::resolve(5, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    let spec = SweepSpec::new("fig04", "#failed links", vec![2u32, 6, 10, 14], move |&k| {
        scale.apply(scenarios::fig04_detection(k))
    });
    sweep_table(&engine, &spec, |&k, report| {
        let integer = report.integer.as_ref().expect("integer enabled");
        let binary = report.binary.as_ref().expect("binary enabled");
        SeriesRow {
            x: f64::from(k),
            values: vec![
                ("007 prec %".into(), precision_pct(&report.vigil)),
                ("007 rec %".into(), recall_pct(&report.vigil)),
                ("int prec %".into(), precision_pct(integer)),
                ("int rec %".into(), recall_pct(integer)),
                ("bin prec %".into(), precision_pct(binary)),
                ("bin rec %".into(), recall_pct(binary)),
            ],
        }
    });
    println!("\npaper: 007 precision/recall near 100% across k; optimizations flag more");
    println!("spurious links (their minimal covers are underdetermined under noise).");
}
