//! §8.2: EverFlow validation of 007's TCP connection diagnosis, on the
//! packet-level emulator.
//!
//! The paper enabled EverFlow (full packet capture) for the outgoing
//! traffic of 9 random hosts for 5 hours — while 007 itself ran
//! fleet-wide, as always — and checked two things over the captured
//! flows with retransmissions:
//!
//! 1. the link 007 blames for each such flow matches where EverFlow saw
//!    its packets drop — "007 was accurate in every single case";
//! 2. the path 007's traceroute recorded "matches exactly the path taken
//!    by that flow's packets" — routing does not shift between the drop
//!    and the trace.
//!
//! Our emulator's ground truth plays EverFlow's role; 007's side runs the
//! real probe-train machinery (crafted packets, ICMP parsing, alias
//! resolution) for every retransmitting flow in the fabric. Each
//! validation round is an independent observation window — one
//! sweep-engine task with its own packet emulator.

use rand::{seq::SliceRandom, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vigil::prelude::*;
use vigil::sweep::task_rng;
use vigil_agents::{ProbeTracer, Tracer};
use vigil_analysis::{blame_flow, FlowEvidence, VoteTally, VoteWeight};
use vigil_bench::{banner, print_engine, write_json, Scale};
use vigil_fabric::flowsim::simulate_epoch;
use vigil_fabric::netsim::{NetSim, NetSimConfig};

fn main() {
    banner(
        "sec8_2",
        "EverFlow cross-validation: blamed link + recorded path vs ground truth",
        "§8.2: '007 was accurate in every single case'; paths match exactly",
    );
    let scale = Scale::resolve(1, 1);
    let engine = SweepEngine::from_env();
    print_engine(&engine);
    let rounds = if scale.fast { 6 } else { 30 };

    let params = ClosParams::tiny();
    let topo = ClosTopology::new(params, 8).expect("valid");
    let mut rng = ChaCha8Rng::seed_from_u64(0x82);
    let plan = FaultPlan {
        failures: 2,
        failure_rate: RateRange { lo: 2e-3, hi: 8e-3 },
        ..FaultPlan::paper_default(2)
    };
    let faults = plan.build(&topo, &mut rng);

    // EverFlow is enabled for 9 random hosts; 007 monitors everyone.
    let mut monitored: Vec<_> = topo.hosts().collect();
    monitored.shuffle(&mut rng);
    monitored.truncate(9);

    let traffic = TrafficSpec {
        conns_per_host: ConnCount::Fixed(25),
        ..TrafficSpec::paper_default()
    };

    let per_round = engine.run_tasks(rounds, |round| {
        // Distinct master from the 0x82 setup rng: task_rng(m, 0) == m's
        // stream, which would replay the fault/monitored-host draws.
        let mut rng = task_rng(0xA0_82, round);
        // Every round gets its own packet emulator — rounds are
        // independent capture windows.
        let mut sim = NetSim::new(
            topo.clone(),
            faults.clone(),
            NetSimConfig::default(),
            88 + round as u64,
        );
        let mut traced = 0u64;
        let mut path_matches = 0u64;
        let mut blame_matches = 0u64;
        let mut blame_scored = 0u64;

        // One epoch of fleet-wide traffic (the fabric's ground truth is
        // EverFlow's capture for the monitored hosts).
        let outcome = simulate_epoch(&topo, &faults, &traffic, &SimConfig::default(), &mut rng);

        // 007 fleet-wide: probe-trace every retransmitting flow.
        let mut discovered: Vec<(usize, vigil_agents::DiscoveredPath)> = Vec::new();
        for (i, f) in outcome.flows.iter().enumerate() {
            if f.retransmissions == 0 || !f.established {
                continue;
            }
            sim.advance(5e-3);
            let mut tracer = ProbeTracer::new(&mut sim);
            if let Some(d) = tracer.trace(f.src, &f.tuple) {
                discovered.push((i, d));
            }
        }
        let evidence: Vec<FlowEvidence> = discovered
            .iter()
            .map(|(i, d)| FlowEvidence {
                links: d.links.clone(),
                retransmissions: outcome.flows[*i].retransmissions,
                complete: d.complete,
            })
            .collect();
        let tally = VoteTally::tally(
            &evidence,
            topo.num_links(),
            VoteWeight::ReciprocalPathLength,
        );

        // Validation: restricted to the EverFlow-monitored hosts, like
        // the paper. Ground-truth noise drops are excluded as in §6.
        for ((i, d), ev) in discovered.iter().zip(&evidence) {
            let flow = &outcome.flows[*i];
            if !monitored.contains(&flow.src) {
                continue;
            }
            traced += 1;
            // (2) the recorded path must equal EverFlow's capture.
            if d.links == flow.path.links {
                path_matches += 1;
            }
            // (1) the blamed link must match where the packets dropped.
            if let Some(truth) = flow.dominant_drop_link() {
                if outcome.ground_truth.is_noise_link(truth) {
                    continue;
                }
                blame_scored += 1;
                if blame_flow(&tally, ev) == Some(truth) {
                    blame_matches += 1;
                }
            }
        }
        (traced, path_matches, blame_matches, blame_scored)
    });

    let traced: u64 = per_round.iter().map(|r| r.0).sum();
    let path_matches: u64 = per_round.iter().map(|r| r.1).sum();
    let blame_matches: u64 = per_round.iter().map(|r| r.2).sum();
    let blame_scored: u64 = per_round.iter().map(|r| r.3).sum();

    println!("\nmonitored-host flows traced: {traced}");
    println!(
        "path match (007 trace vs EverFlow capture): {}/{} = {:.1}%   (paper: 100%)",
        path_matches,
        traced,
        path_matches as f64 / traced.max(1) as f64 * 100.0
    );
    println!(
        "blame match (007 vs EverFlow drop location): {}/{} = {:.1}%   (paper: 100%)",
        blame_matches,
        blame_scored,
        blame_matches as f64 / blame_scored.max(1) as f64 * 100.0
    );
    write_json(
        "sec8_2",
        &serde_json::json!({
            "traced": traced,
            "path_matches": path_matches,
            "blame_matches": blame_matches,
            "blame_scored": blame_scored,
        }),
    );
}
