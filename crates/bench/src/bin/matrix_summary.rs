//! Scenario-matrix summary: run the full fault × topology × traffic grid
//! and emit the conformance verdict as `results/matrix.json`.
//!
//! The paper evaluates ~22 hand-picked scenarios; the matrix sweeps the
//! composed space (blackholes, gray drops, flaps, maintenance, SLB
//! outages, degraded/oversubscribed fabrics, skewed traffic) and checks
//! each case against its accuracy envelope. Scale follows the standard
//! knobs: `VIGIL_TRIALS` / `VIGIL_EPOCHS` / `VIGIL_FAST=1`; sharding
//! follows `VIGIL_THREADS` with byte-identical output at any width.

use vigil::prelude::*;
use vigil_bench::{banner, print_engine, write_json, Scale};

fn main() {
    banner(
        "matrix",
        "scenario-matrix conformance (fault × topology × traffic grid)",
        "beyond §6–§8: the composed scenario space, envelope-checked",
    );
    // Defaults chosen so VIGIL_FAST lands on the same 2-trial smoke scale
    // the conformance test and `vigil-sim matrix` use (envelopes are
    // calibrated down to 2 × 1, not below).
    let scale = Scale::resolve(6, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    let cases = scenarios::standard_matrix();
    let mut runner = MatrixRunner::new(engine);
    runner.trials = scale.trials;
    runner.epochs = scale.epochs;
    println!(
        "{} case(s) × {} trial(s) × {} epoch(s)\n",
        cases.len(),
        runner.trials,
        runner.epochs
    );

    let report = runner.run(&cases);
    let pct = |v: Option<f64>| v.map_or(f64::NAN, |x| x * 100.0);
    println!(
        "{:<28} {:>8} {:>8} {:>10}  verdict",
        "case", "acc %", "rec %", "blamed/ep"
    );
    for c in &report.cases {
        println!(
            "{:<28} {:>8.1} {:>8.1} {:>10.2}  {}",
            c.name,
            pct(c.metrics.accuracy),
            pct(c.metrics.recall),
            c.metrics.blamed_per_epoch,
            if c.pass { "pass" } else { "FAIL" }
        );
    }
    let failures = report.failures();
    println!(
        "\nconformance: {}/{} case(s) pass",
        report.cases.len() - failures.len(),
        report.cases.len()
    );
    write_json("matrix", &report);
    assert!(
        failures.is_empty(),
        "cases outside their envelopes: {:?}",
        failures.iter().map(|c| c.name.as_str()).collect::<Vec<_>>()
    );
}
