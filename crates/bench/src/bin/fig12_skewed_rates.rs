//! Figure 12: Algorithm 1 with *heavily skewed* failure severities — one
//! link dropping 10–100 % of packets while the others drop 0.01–0.1 %.
//! Past approaches reported this mix as hard to detect.
//!
//! Paper result: "007 can detect up to 7 failures with accuracy above
//! 90 %. Its recall drops as the number of failed links increase …
//! because the increase in the number of failures drives up the votes of
//! all other links increasing the cutoff threshold"; precision stays
//! high. Had the top-k links been selected, recall would be ≈ 100 % — we
//! print that variant too.

use std::collections::BTreeSet;
use vigil::prelude::*;
use vigil_bench::{banner, precision_pct, print_engine, recall_pct, sweep_table, Scale, SeriesRow};
use vigil_stats::BinaryConfusion;

fn main() {
    banner(
        "fig12",
        "Algorithm 1 with skewed drop rates (one hot link + mild ones)",
        "§6.6 Figure 12: precision high; recall decays with k (threshold effect)",
    );
    let scale = Scale::resolve(5, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    let spec = SweepSpec::new("fig12", "#failed links", vec![2u32, 6, 10, 14], move |&k| {
        scale.apply(scenarios::fig12_skewed_rates(k))
    });
    sweep_table(&engine, &spec, |&k, report| {
        // The paper's counterfactual: "if the top k links had been
        // selected 007's recall would have been close to 100%".
        let mut topk_conf = BinaryConfusion::default();
        for er in &report.epochs {
            let topk: BTreeSet<_> = er
                .unbounded_picks
                .iter()
                .take(k as usize)
                .copied()
                .collect();
            let truth: BTreeSet<_> = er.truth_failed.iter().copied().collect();
            topk_conf.merge(BinaryConfusion::from_sets(&topk, &truth));
        }

        let integer = report.integer.as_ref().expect("integer enabled");
        SeriesRow {
            x: f64::from(k),
            values: vec![
                ("007 prec %".into(), precision_pct(&report.vigil)),
                ("007 rec %".into(), recall_pct(&report.vigil)),
                (
                    "top-k rec %".into(),
                    topk_conf.recall().map_or(f64::NAN, |r| r * 100.0),
                ),
                ("int prec %".into(), precision_pct(integer)),
                ("int rec %".into(), recall_pct(integer)),
            ],
        }
    });
    println!("\npaper: 007 precision ~100%; recall decays with k because the hot link's");
    println!("vote mass raises the 1% threshold above the mild links' tallies.");
}
