//! Theorems 1–3 as numbers: the closed-form bounds, cross-checked against
//! Monte-Carlo estimates from the simulator.
//!
//! * Theorem 1: the per-host traceroute budget `Ct`.
//! * Theorem 2/3: the amplification factor `α`, the tolerated noise
//!   ceiling `p_g ≤ (1 − (1 − p_b)^{c_l}) / (α·c_u)`, and the
//!   mis-ranking probability `ε ≤ 2e^{−O(N)}`.
//! * Lemma 2: the vote-probability bounds `v_b ≥ r_b/(n0·n1·npod)` and
//!   the `v_g` ceiling — verified empirically by counting votes.
//!
//! The Monte-Carlo epochs are independent — each runs as one
//! sweep-engine task.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vigil::prelude::*;
use vigil::sweep::task_rng;
use vigil_bench::{banner, print_engine, write_json, Scale};
use vigil_fabric::faults::LinkFaults;
use vigil_topology::bounds::{theorem1_ct_bound, theorem2_k_max, Theorem2};

fn main() {
    banner(
        "thm2",
        "Theorem 1/2/3 bounds + Monte-Carlo verification of Lemma 2",
        "§4.1, §5.2, Appendix C",
    );
    let scale = Scale::resolve(1, 1);
    let engine = SweepEngine::from_env();
    print_engine(&engine);
    let params = ClosParams::paper_sim();

    println!("\nTheorem 1 (paper topology n0=20 n1=16 n2=20 npod=2 H=20):");
    for tmax in [50.0, 100.0, 200.0] {
        println!(
            "  Tmax = {tmax:>5}: Ct = {:.2} traceroutes/s/host",
            theorem1_ct_bound(&params, tmax)
        );
    }
    println!(
        "  k_max (Theorem 2 coverage) = {:.1} simultaneous failures",
        theorem2_k_max(&params).expect("multi-pod")
    );

    println!("\nTheorem 2/3 grid (c_l = 50, c_u = 100):");
    println!(
        "{:>4} {:>10} {:>10} {:>14} {:>12} {:>12}",
        "k", "p_bad", "alpha", "noise ceiling", "eps(N=1e5)", "eps(N=1e6)"
    );
    for k in [1u32, 5, 10, 20] {
        for pb in [5e-4, 5e-3] {
            let t = Theorem2 {
                params,
                k,
                p_bad: pb,
                p_good: 1e-7,
                c_lower: 50,
                c_upper: 100,
            };
            let alpha = t.alpha().map_or(f64::NAN, |a| a);
            let ceil = t.noise_ceiling().unwrap_or(f64::NAN);
            let e5 = t.epsilon(100_000).unwrap_or(f64::NAN);
            let e6 = t.epsilon(1_000_000).unwrap_or(f64::NAN);
            println!("{k:>4} {pb:>10.0e} {alpha:>10.3} {ceil:>14.2e} {e5:>12.3e} {e6:>12.3e}");
        }
    }

    // --- Monte-Carlo check of Lemma 2 ----------------------------------
    // Count how often the bad link / a fixed good link receives a vote,
    // per connection, and compare with the bounds.
    println!("\nLemma 2 Monte-Carlo check (smaller fabric for speed):");
    let mc_params = ClosParams {
        npod: 2,
        n0: 8,
        n1: 6,
        n2: 6,
        hosts_per_tor: 6,
    };
    let topo = ClosTopology::new(mc_params, 5).expect("valid");
    let mut rng = ChaCha8Rng::seed_from_u64(0x7772);
    let mut faults = LinkFaults::new(topo.num_links());
    faults.set_noise(RateRange { lo: 0.0, hi: 1e-7 }, &mut rng);
    let bad = topo
        .links()
        .iter()
        .find(|l| l.kind == LinkKind::TorToT1)
        .expect("fabric link")
        .id;
    let p_bad = 5e-3;
    faults.fail_link(bad, p_bad);

    let cfg = RunConfig {
        traffic: TrafficSpec {
            conns_per_host: ConnCount::Fixed(40),
            packets_per_flow: PacketCount::Fixed(75),
            ..TrafficSpec::paper_default()
        },
        pacer: PacerBudget::Unlimited,
        baselines: Baselines {
            integer: false,
            binary: false,
            ..Baselines::default()
        },
        ..RunConfig::default()
    };
    let epochs = if scale.fast { 4 } else { 16 };

    let samples = engine.run_tasks(epochs, |epoch| {
        // Distinct master from the 0x7772 setup rng: task_rng(m, 0) == m's
        // stream, which would correlate epoch 0 with the fault draw.
        let mut rng = task_rng(0xA0_7772, epoch);
        let run = vigil::run_epoch(&topo, &faults, &cfg, &mut rng);
        let connections = run.outcome.flows.len() as u64;
        let bad_votes = run
            .evidence
            .iter()
            .filter(|e| e.links.contains(&bad))
            .count() as u64;
        // The most-voted good link's raw vote count this epoch.
        let top_good = run
            .detection
            .raw_tally
            .ranking()
            .into_iter()
            .find(|(l, _)| *l != bad)
            .map_or(0.0, |(_, v)| v);
        (connections, bad_votes, top_good.ceil() as u64)
    });
    let connections: u64 = samples.iter().map(|s| s.0).sum();
    let bad_votes: u64 = samples.iter().map(|s| s.1).sum();
    let max_good_votes: u64 = samples.iter().map(|s| s.2).sum();

    let t = Theorem2 {
        params: mc_params,
        k: 1,
        p_bad,
        p_good: 1e-7,
        c_lower: 75,
        c_upper: 75,
    };
    let vb_emp = bad_votes as f64 / connections as f64;
    println!(
        "  empirical v_bad = {:.3e}  |  Lemma 2 floor r_b/(n0·n1·npod) = {:.3e}",
        vb_emp,
        t.v_bad_floor()
    );
    assert!(
        vb_emp >= t.v_bad_floor() * 0.9,
        "empirical bad-link vote rate violates Lemma 2's floor"
    );
    println!(
        "  bad link received {:.1}x the votes of the best good link on average",
        bad_votes as f64 / (max_good_votes.max(1) as f64 / epochs as f64) / epochs as f64
    );
    println!("  Lemma 2 floor respected ✓ (the gap is what Theorem 3 amplifies with N)");
    write_json(
        "thm2",
        &serde_json::json!({
            "v_bad_empirical": vb_emp,
            "v_bad_floor": t.v_bad_floor(),
            "connections": connections,
        }),
    );
}
