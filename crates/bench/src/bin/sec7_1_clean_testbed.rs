//! §7.1: validating a "clean" testbed — and finding it isn't.
//!
//! "We repave the cluster by setting all devices to a clean state. We
//! then run 007 without injecting any failures. We see that in the
//! newly-repaved cluster, links arriving at a particular ToR switch had
//! abnormally high votes, namely 22.5 ± 3.65 in average. We thus
//! suspected that this ToR is experiencing problems. After rebooting it,
//! the total votes of the links went down to 0."
//!
//! The reproduction: a supposedly clean cluster hides one ToR that
//! mangles a fraction of everything it forwards. 007's ordinary link
//! votes concentrate on the ToR's links; the switch-level voting
//! extension names the switch; "rebooting" (repairing) it silences the
//! votes. Epochs are independent observation windows — each runs as one
//! sweep-engine task.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vigil::prelude::*;
use vigil::sweep::task_rng;
use vigil_analysis::switch_votes::SwitchTally;
use vigil_bench::{banner, print_engine, write_json, Scale};
use vigil_fabric::faults::LinkFaults;
use vigil_stats::Summary;
use vigil_topology::Node;

/// Votes arriving at the sick ToR in one epoch, for a given fault table.
fn observe_epochs(
    engine: &SweepEngine,
    epochs: usize,
    seed: u64,
    topo: &ClosTopology,
    faults: &LinkFaults,
    cfg: &RunConfig,
    sick_tor: vigil_topology::SwitchId,
) -> (Summary, usize) {
    let observations = engine.run_tasks(epochs, |epoch| {
        let mut rng = task_rng(seed, epoch);
        let run = vigil::run_epoch(topo, faults, cfg, &mut rng);
        // Link-level: total votes on links arriving at the sick ToR.
        let arriving: f64 = topo
            .links()
            .iter()
            .filter(|l| l.to == Node::Switch(sick_tor))
            .map(|l| run.detection.raw_tally.votes(l.id))
            .sum();
        // Switch-level extension: does the sick ToR top the switch tally?
        let tally = SwitchTally::tally(topo, &run.evidence);
        let topped = tally.ranking().first().map(|(s, _)| *s) == Some(sick_tor);
        (arriving, topped)
    });
    let mut votes = Summary::new();
    let mut top_hits = 0usize;
    for (arriving, topped) in observations {
        votes.record(arriving);
        top_hits += usize::from(topped);
    }
    (votes, top_hits)
}

fn main() {
    banner(
        "sec7_1",
        "clean-testbed validation: a sick ToR unmasked, then 'rebooted'",
        "§7.1: links at one ToR averaged 22.5±3.65 votes; 0 after reboot",
    );
    let scale = Scale::resolve(1, 1);
    let engine = SweepEngine::from_env();
    print_engine(&engine);
    let epochs = if scale.fast { 5 } else { 20 };

    let topo = ClosTopology::new(ClosParams::test_cluster(), 71).expect("valid");
    let mut rng = ChaCha8Rng::seed_from_u64(0x71);

    // The hidden defect: one ToR's forwarding plane corrupts packets on
    // every link *arriving* at it (low rate — nobody noticed at repave).
    let sick_tor = topo.tor(0, rng.gen_range(0..topo.params().n0));
    let mut faults = LinkFaults::new(topo.num_links());
    faults.set_noise(RateRange::PAPER_NOISE, &mut rng);
    for l in topo.links() {
        if l.to == Node::Switch(sick_tor) {
            faults.fail_link(l.id, rng.gen_range(2e-3..6e-3));
        }
    }

    let cfg = RunConfig {
        traffic: TrafficSpec {
            conns_per_host: ConnCount::Fixed(80),
            ..TrafficSpec::paper_default()
        },
        baselines: Baselines {
            integer: false,
            binary: false,
            ..Baselines::default()
        },
        ..RunConfig::default()
    };

    let (sick_votes, switch_top_hits) =
        observe_epochs(&engine, epochs, 0xA1_71, &topo, &faults, &cfg, sick_tor);

    println!(
        "\nvotes on links arriving at the sick ToR: {:.1} ± {:.1} per epoch   (paper: 22.5 ± 3.65)",
        sick_votes.mean(),
        sick_votes.ci95_half_width().unwrap_or(f64::NAN)
    );
    println!(
        "switch-level voting names the sick ToR first in {}/{} epochs",
        switch_top_hits, epochs
    );

    // --- the reboot -----------------------------------------------------
    let links_to_repair: Vec<_> = faults.failed_set().iter().copied().collect();
    for l in links_to_repair {
        faults.repair_link(l, RateRange::PAPER_NOISE, &mut rng);
    }
    let (post, _) = observe_epochs(&engine, epochs, 0xB0_71, &topo, &faults, &cfg, sick_tor);
    println!(
        "after 'rebooting' the ToR: {:.2} ± {:.2} votes per epoch   (paper: 0)",
        post.mean(),
        post.ci95_half_width().unwrap_or(0.0)
    );
    assert!(
        post.mean() < sick_votes.mean() / 10.0,
        "reboot must collapse the vote mass"
    );
    write_json(
        "sec7_1",
        &serde_json::json!({
            "pre_mean": sick_votes.mean(),
            "post_mean": post.mean(),
            "switch_top_hits": switch_top_hits,
            "epochs": epochs,
        }),
    );
}
