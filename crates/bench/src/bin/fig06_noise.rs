//! Figure 6: sensitivity to noise — good links' drop rates swept far
//! above the paper's default (0, 10⁻⁶) range; (a) one failure,
//! (b) five failures.
//!
//! Paper result: "higher noise levels have little impact on 007's ability
//! to find the cause of drops on individual flows"; the optimization's
//! confidence intervals balloon instead.

use vigil::prelude::*;
use vigil_bench::{accuracy_pct, banner, print_engine, sweep_table, Scale, SeriesRow};

fn main() {
    banner(
        "fig06",
        "accuracy vs noise level (good-link drop rates)",
        "§6.3 Figure 6: 007 insensitive to noise; optimization high-variance",
    );
    let scale = Scale::resolve(5, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    for (label, failures) in [("(a) single failure", 1u32), ("(b) five failures", 5)] {
        println!("\n{label}:\n");
        // Sweep from a tenth of the paper's baseline noise to 50× it,
        // staying within the Theorem 2 ceiling (≈1e-4 for this fabric) —
        // beyond that 007 makes no claim.
        let id = format!("fig06_{failures}");
        let spec = SweepSpec::new(
            &id,
            "noise (max rate)",
            vec![1e-7, 1e-6, 5e-6, 1e-5, 5e-5],
            move |&noise| scale.apply(scenarios::fig06_noise(noise, failures)),
        );
        sweep_table(&engine, &spec, |&noise, report| {
            let integer = report.integer.as_ref().expect("integer enabled");
            SeriesRow {
                x: noise,
                values: vec![
                    ("007 acc %".into(), accuracy_pct(&report.vigil)),
                    ("int-opt acc %".into(), accuracy_pct(integer)),
                    (
                        "int CI±".into(),
                        integer.accuracy.ci95_half_width().unwrap_or(f64::NAN) * 100.0,
                    ),
                ],
            }
        });
    }
    println!("\npaper: 007's accuracy flat in noise; the optimization's intervals widen.");
}
