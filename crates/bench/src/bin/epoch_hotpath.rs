//! Single-epoch hot-path benchmark: wall-clock ns/epoch plus a counting
//! global allocator that records allocations and bytes per epoch.
//!
//! `BENCH_sweep.json` tracks the multi-trial engine; this binary tracks
//! the constant factors *inside* one epoch — the innermost loop every
//! figure, the matrix, and the sweep engine multiply. It writes
//! `BENCH_epoch.json` at the repository root with mean ± std-dev ns per
//! epoch, allocations/bytes per epoch, and the pre-PR baseline those
//! numbers are judged against.
//!
//! The allocator wrapper is bench-only (this binary, not the library
//! crates) which is why the `unsafe_code` workspace deny is relaxed here:
//! `GlobalAlloc` is an unsafe trait by definition, and the wrapper only
//! forwards to `System` while bumping two atomics.
#![allow(unsafe_code)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use vigil::prelude::*;

/// Forwards to [`System`], counting every allocation and allocated byte.
/// Reallocations count as one allocation (they may move the block).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocation counts measured on this scenario *before* the
/// allocation-free epoch refactor (path interning, bucketed dispatch,
/// epoch scratch, dense tallies), recorded so `BENCH_epoch.json` always
/// carries the comparison point. Measured with this same binary built
/// at the pre-refactor commit (200 iters, 1-core container): the
/// allocation count is deterministic for the pinned seed; the timing is
/// the mean of six runs interleaved with the refactored binary on the
/// same box (1-core container — indicative only, judge on multicore).
const PRE_PR_ALLOCS_PER_EPOCH: f64 = 22_423.0;
const PRE_PR_MEAN_NS: f64 = 1_837_533.0;

/// Warm-pass numbers committed by the PR before the epoch-compiled
/// route cache (same scenario, same 1-core bench container) — the
/// baseline the route-cache speedup and alloc cut are judged against.
const PRE_ROUTE_CACHE_WARM_MEAN_NS: f64 = 2_115_772.0;
const PRE_ROUTE_CACHE_WARM_ALLOCS: f64 = 4_794.0;

fn scenario() -> (ClosTopology, vigil_fabric::LinkFaults, RunConfig) {
    let topo = ClosTopology::new(ClosParams::tiny(), 11).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let faults = FaultPlan {
        failure_rate: RateRange::fixed(0.01),
        ..FaultPlan::paper_default(2)
    }
    .build(&topo, &mut rng);
    // The paper's default traffic: 60 connections per host, 50–100
    // packets each — the per-epoch workload every experiment multiplies.
    let cfg = RunConfig::default();
    (topo, faults, cfg)
}

fn main() {
    let fast = std::env::var("VIGIL_FAST").is_ok_and(|v| v == "1");
    let iters: usize = std::env::var("VIGIL_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast { 30 } else { 200 });

    let (topo, faults, cfg) = scenario();

    // Warm-up: fault tables, lazy statics, allocator pools.
    for _ in 0..3 {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        std::hint::black_box(vigil::run_epoch(&topo, &faults, &cfg, &mut rng));
    }

    // Cold pass: the same epoch replayed `iters` times through a fresh
    // scratch each time (fixed seed, so the allocation count is a stable
    // property of the code, not the draw). This is the apples-to-apples
    // comparison against the pre-refactor baseline, which had no scratch
    // to reuse.
    let mut samples_ns = Vec::with_capacity(iters);
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let bytes_before = ALLOCATED_BYTES.load(Ordering::Relaxed);
    for _ in 0..iters {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let started = std::time::Instant::now();
        std::hint::black_box(vigil::run_epoch(&topo, &faults, &cfg, &mut rng));
        samples_ns.push(started.elapsed().as_nanos() as f64);
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let bytes = ALLOCATED_BYTES.load(Ordering::Relaxed) - bytes_before;

    // Warm pass: one scratch AND one stream session threaded through
    // every iteration — the steady state of the trial loop
    // (`run_trial_with` reuses both across a trial's epochs; since the
    // streaming refactor the session carries the hub, ledger, and agent
    // table that a bare `run_epoch_with` call rebuilds per epoch). This
    // is the number that would regress if either reuse were ever
    // silently dropped; the first (cold) warm iteration is excluded from
    // the per-epoch average by measuring after it.
    let mut scratch = vigil_fabric::EpochScratch::new();
    let mut session = vigil::StreamSession::new(
        &topo,
        &cfg,
        vigil::StreamTuning::default(),
        vigil::RetainPolicy::All,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    std::hint::black_box(session.run_window(&topo, &cfg, &faults, &mut rng, &mut scratch));
    let mut warm_ns = Vec::with_capacity(iters);
    let warm_allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let warm_bytes_before = ALLOCATED_BYTES.load(Ordering::Relaxed);
    for _ in 0..iters {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let started = std::time::Instant::now();
        std::hint::black_box(session.run_window(&topo, &cfg, &faults, &mut rng, &mut scratch));
        warm_ns.push(started.elapsed().as_nanos() as f64);
    }
    let warm_allocs = ALLOCATIONS.load(Ordering::Relaxed) - warm_allocs_before;
    let warm_bytes = ALLOCATED_BYTES.load(Ordering::Relaxed) - warm_bytes_before;
    // Static faults keep one down-set for the whole run, so the route
    // cache compiles once (during warm-up) and every measured iteration
    // is a table hit — the steady state the trial loop lives in.
    let route = scratch.route_cache_stats();

    let stats = |samples: &[f64]| {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    };
    let n = iters as f64;
    let (mean_ns, std_dev_ns) = stats(&samples_ns);
    let (warm_mean_ns, warm_std_dev_ns) = stats(&warm_ns);
    let allocs_per_epoch = allocs as f64 / n;
    let bytes_per_epoch = bytes as f64 / n;
    let warm_allocs_per_epoch = warm_allocs as f64 / n;
    let warm_bytes_per_epoch = warm_bytes as f64 / n;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let reduction = if allocs_per_epoch > 0.0 {
        PRE_PR_ALLOCS_PER_EPOCH / allocs_per_epoch
    } else {
        f64::INFINITY
    };

    let doc = serde_json::json!({
        "bench": "epoch/hotpath_tiny_paper_traffic",
        "iters": iters,
        "cores_available": cores,
        "mean_ns_per_epoch": mean_ns,
        "std_dev_ns_per_epoch": std_dev_ns,
        "allocs_per_epoch": allocs_per_epoch,
        "bytes_per_epoch": bytes_per_epoch,
        "warm_mean_ns_per_epoch": warm_mean_ns,
        "warm_std_dev_ns_per_epoch": warm_std_dev_ns,
        "warm_allocs_per_epoch": warm_allocs_per_epoch,
        "warm_bytes_per_epoch": warm_bytes_per_epoch,
        "pre_pr_allocs_per_epoch": PRE_PR_ALLOCS_PER_EPOCH,
        "pre_pr_mean_ns_per_epoch": PRE_PR_MEAN_NS,
        "alloc_reduction_vs_pre_pr": reduction,
        "route_table_hits": route.table_hits,
        "route_table_misses": route.table_misses,
        "route_table_compiles": route.compiles,
        "route_path_hits": route.path_hits,
        "route_path_misses": route.path_misses,
        "pre_route_cache_warm_mean_ns_per_epoch": PRE_ROUTE_CACHE_WARM_MEAN_NS,
        "pre_route_cache_warm_allocs_per_epoch": PRE_ROUTE_CACHE_WARM_ALLOCS,
        "warm_speedup_vs_pre_route_cache": PRE_ROUTE_CACHE_WARM_MEAN_NS / warm_mean_ns,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_epoch.json");
    let json = serde_json::to_string_pretty(&doc).expect("serialize BENCH_epoch.json");
    std::fs::write(path, json).expect("write BENCH_epoch.json");
    println!(
        "epoch hot path: cold {mean_ns:.0} ns/epoch (σ {std_dev_ns:.0}), \
         {allocs_per_epoch:.1} allocs/epoch; warm (scratch reused) {warm_mean_ns:.0} ns/epoch \
         (σ {warm_std_dev_ns:.0}), {warm_allocs_per_epoch:.1} allocs/epoch, \
         {warm_bytes_per_epoch:.0} bytes/epoch over {iters} iters ({cores} core(s)) \
         -> BENCH_epoch.json [{reduction:.2}x fewer cold allocs than pre-PR, \
         {:.2}x warm speedup vs pre-route-cache; route cache {} compile(s), \
         {} table hit(s), {}/{} path hits/misses]",
        PRE_ROUTE_CACHE_WARM_MEAN_NS / warm_mean_ns,
        route.compiles,
        route.table_hits,
        route.path_hits,
        route.path_misses,
    );
}
