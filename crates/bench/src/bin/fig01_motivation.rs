//! Figure 1: the motivating observations from production traffic.
//!
//! (a) CDF of the number of flows with ≥ 1 retransmission per 30-second
//!     interval, conditioned on the interval's total drop count
//!     (> 0, > 1, > 10, > 30, > 50). Paper: "95 % of the time, at least
//!     3 flows see drops when we condition on ≥ 10 total drops".
//! (b) CDF of the fraction of an interval's drops belonging to each flow
//!     (intervals with ≥ 10 drops). Paper: "in ≥ 80 % of cases, no single
//!     flow captures more than 34 % of all drops".
//!
//! The production day is reproduced as a sequence of intervals with an
//! evolving fault population (0–3 lossy links, re-drawn per interval)
//! over background noise. Intervals are independent — each is one
//! sweep-engine task with its own index-derived RNG stream.

use rand::Rng;
use vigil::prelude::*;
use vigil::sweep::task_rng;
use vigil_bench::{banner, print_engine, write_json, Scale};
use vigil_fabric::flowsim::simulate_epoch;
use vigil_stats::Ecdf;

/// What one simulated interval contributes to the CDFs.
struct Interval {
    total_drops: u64,
    dropping_flows: u64,
    shares: Vec<f64>,
    max_share: Option<f64>,
}

fn main() {
    banner(
        "fig01",
        "drops are spread across flows (per-interval CDFs)",
        "§2 Figure 1: ≥3 flows see drops when ≥10 drop (95%); max flow share ≤34% (80%)",
    );
    let scale = Scale::resolve(1, 1);
    let engine = SweepEngine::from_env();
    print_engine(&engine);
    let intervals = if scale.fast { 60 } else { 240 };

    let params = if scale.fast {
        ClosParams {
            npod: 2,
            n0: 8,
            n1: 6,
            n2: 6,
            hosts_per_tor: 6,
        }
    } else {
        ClosParams::paper_sim()
    };
    let topo = ClosTopology::new(params, 1).expect("valid");
    let traffic = TrafficSpec {
        conns_per_host: ConnCount::Fixed(20),
        packets_per_flow: PacketCount::Uniform(50, 100),
        ..TrafficSpec::paper_default()
    };
    let sim = SimConfig::default();

    let results = engine.run_tasks(intervals, |interval| {
        let mut rng = task_rng(0x01, interval);
        // The fault population drifts: some intervals quiet, most with a
        // few lossy links of varying severity (a day in a big fabric).
        let failures = *[0u32, 1, 1, 2, 2, 3, 4]
            .get(rng.gen_range(0..7usize))
            .expect("non-empty");
        let plan = FaultPlan {
            failures,
            failure_rate: RateRange { lo: 5e-4, hi: 5e-3 },
            ..FaultPlan::paper_default(0)
        };
        let faults = plan.build(&topo, &mut rng);
        let out = simulate_epoch(&topo, &faults, &traffic, &sim, &mut rng);

        let total: u64 = out.ground_truth.drops_per_link.iter().sum();
        let dropping = out.flows.iter().filter(|f| f.total_drops() > 0).count() as u64;
        let mut shares = Vec::new();
        let mut max_share = None;
        if total >= 10 {
            let mut interval_max: f64 = 0.0;
            for f in &out.flows {
                let d = f.total_drops() as f64;
                if d > 0.0 {
                    let share = d / total as f64;
                    shares.push(share);
                    interval_max = interval_max.max(share);
                }
            }
            max_share = Some(interval_max);
        }
        Interval {
            total_drops: total,
            dropping_flows: dropping,
            shares,
            max_share,
        }
    });

    let flows_with_drops: Vec<(u64, u64)> = results
        .iter()
        .map(|r| (r.total_drops, r.dropping_flows))
        .collect();
    let shares: Vec<f64> = results.iter().flat_map(|r| r.shares.clone()).collect();
    let max_shares: Vec<f64> = results.iter().filter_map(|r| r.max_share).collect();

    println!("\n(a) flows with ≥1 drop per interval, conditioned on total drops:\n");
    println!(
        "{:>12} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "condition", "intervals", "P5", "P25", "P50", "P75", "P95"
    );
    for &(cond, label) in &[
        (0u64, "> 0"),
        (1, "> 1"),
        (10, "> 10"),
        (30, "> 30"),
        (50, "> 50"),
    ] {
        let sample: Vec<f64> = flows_with_drops
            .iter()
            .filter(|(total, _)| *total > cond)
            .map(|(_, n)| *n as f64)
            .collect();
        let n = sample.len();
        let e = Ecdf::new(sample);
        let q = |p: f64| e.quantile(p).map_or("-".into(), |v| format!("{v:.0}"));
        println!(
            "{:>12} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
            label,
            n,
            q(0.05),
            q(0.25),
            q(0.50),
            q(0.75),
            q(0.95)
        );
    }
    // The paper's headline check.
    let cond10: Vec<f64> = flows_with_drops
        .iter()
        .filter(|(t, _)| *t >= 10)
        .map(|(_, n)| *n as f64)
        .collect();
    if !cond10.is_empty() {
        let e = Ecdf::new(cond10);
        let at_least_3 = 1.0 - e.eval(2.0);
        println!(
            "\nP[≥3 flows see drops | ≥10 total drops] = {:.0}%  (paper: 95%)",
            at_least_3 * 100.0
        );
    }

    println!("\n(b) per-flow share of an interval's drops (intervals with ≥10 drops):\n");
    let share_ecdf = Ecdf::new(shares);
    for p in [0.25, 0.50, 0.75, 0.80, 0.90, 0.95] {
        if let Some(v) = share_ecdf.quantile(p) {
            println!("  P{:>2.0} share = {:>5.1}%", p * 100.0, v * 100.0);
        }
    }
    let max_ecdf = Ecdf::new(max_shares);
    println!(
        "\nP[max single-flow share ≤ 34%] = {:.0}%  (paper: ≥80%)",
        max_ecdf.eval(0.34) * 100.0
    );
    println!(
        "P[max single-flow share ≤ 40%] = {:.0}%  (paper: 'no single flow sees more than 40%' in most cases)",
        max_ecdf.eval(0.40) * 100.0
    );
    write_json("fig01", &share_ecdf.sampled(50));
}
