//! Figure 13 (+ the §7.3 integer-program comparison): the test-cluster
//! vote-gap experiment — distribution of
//! `[bad-link votes] − [maximum good-link votes]` for induced single
//! failures at different drop rates on a T1→ToR cluster link.
//!
//! Paper results:
//! * at 1 % and 0.1 % the failed link always has the top tally;
//! * at 0.05 % it tops the ranking 88.89 % of the time and is always in
//!   the top 2;
//! * the integer program also finds it but flags 1.5× / 1.18× / 1.47×
//!   as many links as 007 at 1 % / 0.1 % / 0.05 %.

use vigil::prelude::*;
use vigil_bench::{banner, print_engine, write_json, Scale};
use vigil_stats::Ecdf;

fn main() {
    banner(
        "fig13",
        "vote gap distribution on the test cluster (single induced failure)",
        "§7.3 Figure 13: top-1 at 1%/0.1%; top-2 always at 0.05%; int-opt flags 1.18–1.5x links",
    );
    let scale = Scale::resolve(8, 3);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    let rates = vec![1e-2, 5e-3, 1e-3, 5e-4];
    let spec = SweepSpec::new("fig13", "induced drop rate", rates, move |&rate| {
        let mut cfg = scale.apply(scenarios::fig13_cluster(rate));
        cfg.params = ClosParams::test_cluster(); // never shrink the cluster
        cfg
    });
    let reports = engine.run_sweep(&spec);

    for (&rate, report) in spec.values.iter().zip(&reports) {
        let gaps = Ecdf::new(report.vote_gaps.clone());
        let top1 = report.vote_gaps.iter().filter(|g| **g > 0.0).count() as f64
            / report.vote_gaps.len().max(1) as f64;

        // Top-2 membership + integer-opt over-flagging, from the per-epoch
        // records.
        let mut top2 = 0usize;
        let mut epochs_counted = 0usize;
        let mut int_factor_sum = 0.0;
        let mut int_factor_n = 0usize;
        for er in &report.epochs {
            let Some(bad) = er.truth_failed.first() else {
                continue;
            };
            epochs_counted += 1;
            if er.ranking_head.iter().take(2).any(|l| l == bad) {
                top2 += 1;
            }
            if !er.detected.is_empty() {
                if let Some(int) = &er.integer {
                    // flagged-links ratio: integer-program support size vs
                    // 007 detections.
                    let int_flagged = int.confusion.true_positives + int.confusion.false_positives;
                    let vigil_flagged =
                        er.vigil.confusion.true_positives + er.vigil.confusion.false_positives;
                    if vigil_flagged > 0 {
                        int_factor_sum += int_flagged as f64 / vigil_flagged as f64;
                        int_factor_n += 1;
                    }
                }
            }
        }

        println!("\ninduced drop rate {:.2}%:", rate * 100.0);
        println!(
            "  vote gap quantiles: P10 {:+.2}  P50 {:+.2}  P90 {:+.2}",
            gaps.quantile(0.10).unwrap_or(f64::NAN),
            gaps.quantile(0.50).unwrap_or(f64::NAN),
            gaps.quantile(0.90).unwrap_or(f64::NAN)
        );
        println!(
            "  bad link is top-1: {:>5.1}%   in top-2: {:>5.1}%   (paper: 100%/100% at ≥0.1%, 88.9%/100% at 0.05%)",
            top1 * 100.0,
            top2 as f64 / epochs_counted.max(1) as f64 * 100.0
        );
        if int_factor_n > 0 {
            println!(
                "  integer-opt flagged-links factor vs 007: {:.2}x   (paper: 1.5/1.18/1.47x)",
                int_factor_sum / int_factor_n as f64
            );
        }
        write_json(
            &format!("fig13_rate{}", rate),
            &serde_json::json!({
                "rate": rate,
                "gaps": report.vote_gaps,
                "top1": top1,
            }),
        );
    }
    println!("\npaper: higher drop rate ⇒ larger gap; the correlation between rate and");
    println!("tally is what makes the ranking a drop-rate ranking (Theorem 2).");
}
