//! Figure 3: per-flow blame accuracy vs. number of failed links, in the
//! regime where Theorem 2's conditions hold (failed links at 0.05–1 %).
//!
//! Paper result: 007 averages > 96 % accuracy for k = 2…14 and
//! outperforms the integer optimization in most cases.

use vigil::prelude::*;
use vigil_bench::{accuracy_pct, banner, print_engine, sweep_table, Scale, SeriesRow};

fn main() {
    banner(
        "fig03",
        "accuracy vs #failed links (Theorem 2 regime)",
        "§6.1 Figure 3: 007 ≥ 96% average accuracy, above the integer optimization",
    );
    let scale = Scale::resolve(5, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    let spec = SweepSpec::new("fig03", "#failed links", vec![2u32, 6, 10, 14], move |&k| {
        scale.apply(scenarios::fig03_optimal_case(k))
    });
    sweep_table(&engine, &spec, |&k, report| {
        let integer = report.integer.as_ref().expect("integer baseline enabled");
        SeriesRow {
            x: f64::from(k),
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
                (
                    "007 CI±".into(),
                    report.vigil.accuracy.ci95_half_width().unwrap_or(f64::NAN) * 100.0,
                ),
                (
                    "bad noise marks".into(),
                    report.noise_marked_incorrectly as f64,
                ),
            ],
        }
    });
    println!("\npaper: 007 accuracy > 96% at every k; integer optimization at or below");
    println!("007; zero incorrect noise marks.");
}
