//! Figure 7: fewer connections per host — counts drawn uniformly from
//! (10, 60) instead of the fixed 60. (a) single failure over a drop-rate
//! sweep; (b) 2–14 failures.
//!
//! Paper result: 007 keeps finding per-flow causes; the optimization,
//! under-constrained with less data, develops large variance and loses
//! accuracy at low drop rates.

use vigil::prelude::*;
use vigil_bench::{accuracy_pct, banner, print_table, write_json, Scale, SeriesRow};

fn main() {
    banner(
        "fig07",
        "accuracy with conns/host ~ U(10, 60)",
        "§6.4 Figure 7: 007 robust to fewer connections; optimization degrades",
    );
    let scale = Scale::resolve(5, 2);

    println!("\n(a) single failure:\n");
    let mut rows_a = Vec::new();
    for &rate in &[2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2] {
        let cfg = scale.apply(scenarios::fig07_connections(1, Some(rate)));
        let report = run_experiment(&cfg);
        let integer = report.integer.as_ref().expect("integer enabled");
        rows_a.push(SeriesRow {
            x: rate * 100.0,
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
            ],
        });
    }
    print_table("drop rate (%)", &rows_a);

    println!("\n(b) multiple failures:\n");
    let mut rows_b = Vec::new();
    for k in [2u32, 6, 10, 14] {
        let cfg = scale.apply(scenarios::fig07_connections(k, None));
        let report = run_experiment(&cfg);
        let integer = report.integer.as_ref().expect("integer enabled");
        rows_b.push(SeriesRow {
            x: f64::from(k),
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
                (
                    "int CI±".into(),
                    integer.accuracy.ci95_half_width().unwrap_or(f64::NAN) * 100.0,
                ),
            ],
        });
    }
    print_table("#failed links", &rows_b);
    println!("\npaper: 007 maintains high detection probability regardless of k.");
    write_json("fig07a", &rows_a);
    write_json("fig07b", &rows_b);
}
