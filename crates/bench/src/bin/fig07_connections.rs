//! Figure 7: fewer connections per host — counts drawn uniformly from
//! (10, 60) instead of the fixed 60. (a) single failure over a drop-rate
//! sweep; (b) 2–14 failures.
//!
//! Paper result: 007 keeps finding per-flow causes; the optimization,
//! under-constrained with less data, develops large variance and loses
//! accuracy at low drop rates.

use vigil::prelude::*;
use vigil_bench::{accuracy_pct, banner, print_engine, sweep_table, Scale, SeriesRow};

fn main() {
    banner(
        "fig07",
        "accuracy with conns/host ~ U(10, 60)",
        "§6.4 Figure 7: 007 robust to fewer connections; optimization degrades",
    );
    let scale = Scale::resolve(5, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    println!("\n(a) single failure:\n");
    let spec_a = SweepSpec::new(
        "fig07a",
        "drop rate (%)",
        vec![2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2],
        move |&rate| scale.apply(scenarios::fig07_connections(1, Some(rate))),
    );
    sweep_table(&engine, &spec_a, |&rate, report| {
        let integer = report.integer.as_ref().expect("integer enabled");
        SeriesRow {
            x: rate * 100.0,
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
            ],
        }
    });

    println!("\n(b) multiple failures:\n");
    let spec_b = SweepSpec::new(
        "fig07b",
        "#failed links",
        vec![2u32, 6, 10, 14],
        move |&k| scale.apply(scenarios::fig07_connections(k, None)),
    );
    sweep_table(&engine, &spec_b, |&k, report| {
        let integer = report.integer.as_ref().expect("integer enabled");
        SeriesRow {
            x: f64::from(k),
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
                (
                    "int CI±".into(),
                    integer.accuracy.ci95_half_width().unwrap_or(f64::NAN) * 100.0,
                ),
            ],
        }
    });
    println!("\npaper: 007 maintains high detection probability regardless of k.");
}
