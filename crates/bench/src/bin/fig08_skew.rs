//! Figure 8: heavily skewed traffic — 80 % of flows target hosts under a
//! random 25 % of ToRs. (a) single failure over a rate sweep;
//! (b) multiple failures.
//!
//! Paper result: "the optimization is much more heavily impacted by the
//! skew than 007. 007 continues to detect the cause of drops with high
//! probability (≥ 85 %) for drop rates higher than 0.1 %"; with multiple
//! failures 007 holds ≥ 98 % while the optimization collapses.

use vigil::prelude::*;
use vigil_bench::{accuracy_pct, banner, print_engine, sweep_table, Scale, SeriesRow};

fn main() {
    banner(
        "fig08",
        "accuracy under skewed traffic (80% of flows to 25% of ToRs)",
        "§6.5 Figure 8: 007 ≥ 85% beyond 0.1% drop rate; optimization suffers",
    );
    let scale = Scale::resolve(5, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    println!("\n(a) single failure:\n");
    let spec_a = SweepSpec::new(
        "fig08a",
        "drop rate (%)",
        vec![2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2],
        move |&rate| scale.apply(scenarios::fig08_skew(1, Some(rate))),
    );
    sweep_table(&engine, &spec_a, |&rate, report| {
        let integer = report.integer.as_ref().expect("integer enabled");
        SeriesRow {
            x: rate * 100.0,
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
            ],
        }
    });

    println!("\n(b) multiple failures:\n");
    let spec_b = SweepSpec::new(
        "fig08b",
        "#failed links",
        vec![2u32, 6, 10, 14],
        move |&k| scale.apply(scenarios::fig08_skew(k, None)),
    );
    sweep_table(&engine, &spec_b, |&k, report| {
        let integer = report.integer.as_ref().expect("integer enabled");
        SeriesRow {
            x: f64::from(k),
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
            ],
        }
    });
    println!("\npaper: 007 ≥ 98% on (b); optimization consistently low under skew.");
}
