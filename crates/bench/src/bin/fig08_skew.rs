//! Figure 8: heavily skewed traffic — 80 % of flows target hosts under a
//! random 25 % of ToRs. (a) single failure over a rate sweep;
//! (b) multiple failures.
//!
//! Paper result: "the optimization is much more heavily impacted by the
//! skew than 007. 007 continues to detect the cause of drops with high
//! probability (≥ 85 %) for drop rates higher than 0.1 %"; with multiple
//! failures 007 holds ≥ 98 % while the optimization collapses.

use vigil::prelude::*;
use vigil_bench::{accuracy_pct, banner, print_table, write_json, Scale, SeriesRow};

fn main() {
    banner(
        "fig08",
        "accuracy under skewed traffic (80% of flows to 25% of ToRs)",
        "§6.5 Figure 8: 007 ≥ 85% beyond 0.1% drop rate; optimization suffers",
    );
    let scale = Scale::resolve(5, 2);

    println!("\n(a) single failure:\n");
    let mut rows_a = Vec::new();
    for &rate in &[2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2] {
        let cfg = scale.apply(scenarios::fig08_skew(1, Some(rate)));
        let report = run_experiment(&cfg);
        let integer = report.integer.as_ref().expect("integer enabled");
        rows_a.push(SeriesRow {
            x: rate * 100.0,
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
            ],
        });
    }
    print_table("drop rate (%)", &rows_a);

    println!("\n(b) multiple failures:\n");
    let mut rows_b = Vec::new();
    for k in [2u32, 6, 10, 14] {
        let cfg = scale.apply(scenarios::fig08_skew(k, None));
        let report = run_experiment(&cfg);
        let integer = report.integer.as_ref().expect("integer enabled");
        rows_b.push(SeriesRow {
            x: f64::from(k),
            values: vec![
                ("007 acc %".into(), accuracy_pct(&report.vigil)),
                ("int-opt acc %".into(), accuracy_pct(integer)),
            ],
        });
    }
    print_table("#failed links", &rows_b);
    println!("\npaper: 007 ≥ 98% on (b); optimization consistently low under skew.");
    write_json("fig08a", &rows_a);
    write_json("fig08b", &rows_b);
}
