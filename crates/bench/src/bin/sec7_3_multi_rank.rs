//! §7.3: rank positions with two simultaneous cluster failures
//! (0.2 % and 0.1 %).
//!
//! Paper results:
//! * the higher-rate link is the most-voted link 100 % of the time;
//! * the second link ranks 2nd 47 % of the time, 3rd 32 % — always within
//!   the top 5;
//! * allowing one false positive (taking the top 3), both failures are
//!   found 80 % of the time;
//! * per-connection blame is right 98 % of the time.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vigil::evaluate::evaluate_epoch;
use vigil::prelude::*;
use vigil_bench::{banner, write_json, Scale};

fn main() {
    banner(
        "sec7_3",
        "rank positions of two unequal failures (0.2% vs 0.1%)",
        "§7.3: hot link #1 100%; 2nd link rank 2 (47%) / 3 (32%), top-5 always; top-3 finds both 80%",
    );
    let scale = Scale::resolve(20, 2);
    let base = scenarios::sec7_3_two_failures();

    let mut epochs = 0u64;
    let mut hot_first = 0u64;
    let mut second_rank_counts = [0u64; 5]; // rank 1..=5
    let mut second_beyond_5 = 0u64;
    let mut both_in_top3 = 0u64;
    let mut acc_hits = 0u64;
    let mut acc_total = 0u64;

    for trial in 0..scale.trials {
        let mut rng = ChaCha8Rng::seed_from_u64(0x73 + trial as u64);
        let topo = ClosTopology::new(base.params, rng.gen()).expect("valid");
        let faults = base.faults.build(&topo, &mut rng);
        // Identify the hot (0.2%) vs mild (0.1%) link from the fault table.
        let mut failed: Vec<_> = faults.failed_set().iter().copied().collect();
        failed.sort_by(|a, b| {
            faults
                .rate(*b)
                .partial_cmp(&faults.rate(*a))
                .expect("finite rates")
        });
        let (hot, mild) = (failed[0], failed[1]);

        for _epoch in 0..scale.epochs {
            let run = vigil::run_epoch(&topo, &faults, &base.run, &mut rng);
            let ranking: Vec<_> = run
                .detection
                .raw_tally
                .ranking()
                .into_iter()
                .map(|(l, _)| l)
                .collect();
            if ranking.is_empty() {
                continue;
            }
            epochs += 1;
            if ranking.first() == Some(&hot) {
                hot_first += 1;
            }
            match ranking.iter().position(|l| *l == mild) {
                Some(pos) if pos < 5 => second_rank_counts[pos] += 1,
                Some(_) => second_beyond_5 += 1,
                None => second_beyond_5 += 1,
            }
            let top3: Vec<_> = ranking.iter().take(3).collect();
            if top3.contains(&&hot) && top3.contains(&&mild) {
                both_in_top3 += 1;
            }
            let er = evaluate_epoch(&run);
            acc_hits += er.vigil.accuracy.hits;
            acc_total += er.vigil.accuracy.total;
        }
    }

    let pct = |n: u64| n as f64 / epochs.max(1) as f64 * 100.0;
    println!("\nepochs scored: {epochs}");
    println!(
        "higher-rate link is most voted: {:.1}%   (paper: 100%)",
        pct(hot_first)
    );
    println!("second link rank distribution:");
    for (i, c) in second_rank_counts.iter().enumerate() {
        println!("  rank {}: {:>5.1}%", i + 1, pct(*c));
    }
    println!(
        "  beyond top-5: {:>5.1}%   (paper: 0%)",
        pct(second_beyond_5)
    );
    println!(
        "both failures within top-3 (≤1 false positive): {:.1}%   (paper: 80%)",
        pct(both_in_top3)
    );
    println!(
        "per-connection blame accuracy: {:.1}%   (paper: 98%)",
        acc_hits as f64 / acc_total.max(1) as f64 * 100.0
    );
    write_json(
        "sec7_3",
        &serde_json::json!({
            "epochs": epochs,
            "hot_first_pct": pct(hot_first),
            "second_rank_counts": second_rank_counts,
            "both_top3_pct": pct(both_in_top3),
        }),
    );
}
