//! §7.3: rank positions with two simultaneous cluster failures
//! (0.2 % and 0.1 %).
//!
//! Paper results:
//! * the higher-rate link is the most-voted link 100 % of the time;
//! * the second link ranks 2nd 47 % of the time, 3rd 32 % — always within
//!   the top 5;
//! * allowing one false positive (taking the top 3), both failures are
//!   found 80 % of the time;
//! * per-connection blame is right 98 % of the time.
//!
//! Trials are independent — each is one sweep-engine task; the rank
//! tallies below are associative sums over trials.

use rand::Rng;
use vigil::evaluate::evaluate_epoch;
use vigil::prelude::*;
use vigil::sweep::task_rng;
use vigil_bench::{banner, print_engine, write_json, Scale};

/// Rank-position counts from one trial (summed across trials).
#[derive(Default)]
struct RankCounts {
    epochs: u64,
    hot_first: u64,
    second_rank: [u64; 5], // rank 1..=5
    second_beyond_5: u64,
    both_in_top3: u64,
    acc_hits: u64,
    acc_total: u64,
}

fn main() {
    banner(
        "sec7_3",
        "rank positions of two unequal failures (0.2% vs 0.1%)",
        "§7.3: hot link #1 100%; 2nd link rank 2 (47%) / 3 (32%), top-5 always; top-3 finds both 80%",
    );
    let scale = Scale::resolve(20, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);
    let base = scenarios::sec7_3_two_failures();

    let per_trial = engine.run_tasks(scale.trials, |trial| {
        let mut rng = task_rng(0x73, trial);
        let topo = ClosTopology::new(base.params, rng.gen()).expect("valid");
        let faults = base.faults.build(&topo, &mut rng);
        // Identify the hot (0.2%) vs mild (0.1%) link from the fault table.
        let mut failed: Vec<_> = faults.failed_set().iter().copied().collect();
        failed.sort_by(|a, b| {
            faults
                .rate(*b)
                .partial_cmp(&faults.rate(*a))
                .expect("finite rates")
        });
        let (hot, mild) = (failed[0], failed[1]);

        let mut counts = RankCounts::default();
        for _epoch in 0..scale.epochs {
            let run = vigil::run_epoch(&topo, &faults, &base.run, &mut rng);
            let ranking: Vec<_> = run
                .detection
                .raw_tally
                .ranking()
                .into_iter()
                .map(|(l, _)| l)
                .collect();
            if ranking.is_empty() {
                continue;
            }
            counts.epochs += 1;
            if ranking.first() == Some(&hot) {
                counts.hot_first += 1;
            }
            match ranking.iter().position(|l| *l == mild) {
                Some(pos) if pos < 5 => counts.second_rank[pos] += 1,
                Some(_) => counts.second_beyond_5 += 1,
                None => counts.second_beyond_5 += 1,
            }
            let top3: Vec<_> = ranking.iter().take(3).collect();
            if top3.contains(&&hot) && top3.contains(&&mild) {
                counts.both_in_top3 += 1;
            }
            let er = evaluate_epoch(&run);
            counts.acc_hits += er.vigil.accuracy.hits;
            counts.acc_total += er.vigil.accuracy.total;
        }
        counts
    });

    let mut total = RankCounts::default();
    for c in per_trial {
        total.epochs += c.epochs;
        total.hot_first += c.hot_first;
        for (slot, n) in total.second_rank.iter_mut().zip(c.second_rank) {
            *slot += n;
        }
        total.second_beyond_5 += c.second_beyond_5;
        total.both_in_top3 += c.both_in_top3;
        total.acc_hits += c.acc_hits;
        total.acc_total += c.acc_total;
    }

    let pct = |n: u64| n as f64 / total.epochs.max(1) as f64 * 100.0;
    println!("\nepochs scored: {}", total.epochs);
    println!(
        "higher-rate link is most voted: {:.1}%   (paper: 100%)",
        pct(total.hot_first)
    );
    println!("second link rank distribution:");
    for (i, c) in total.second_rank.iter().enumerate() {
        println!("  rank {}: {:>5.1}%", i + 1, pct(*c));
    }
    println!(
        "  beyond top-5: {:>5.1}%   (paper: 0%)",
        pct(total.second_beyond_5)
    );
    println!(
        "both failures within top-3 (≤1 false positive): {:.1}%   (paper: 80%)",
        pct(total.both_in_top3)
    );
    println!(
        "per-connection blame accuracy: {:.1}%   (paper: 98%)",
        total.acc_hits as f64 / total.acc_total.max(1) as f64 * 100.0
    );
    write_json(
        "sec7_3",
        &serde_json::json!({
            "epochs": total.epochs,
            "hot_first_pct": pct(total.hot_first),
            "second_rank_counts": total.second_rank.to_vec(),
            "both_top3_pct": pct(total.both_in_top3),
        }),
    );
}
