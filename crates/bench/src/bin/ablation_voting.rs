//! Ablations of 007's §5.1 design choices (the DESIGN.md ▸ items):
//!
//! 1. **vote weight** — the paper's `1/h` vs flat `1` vs `1/h²`;
//! 2. **vote adjustment** — on (paper; "5 % reduction in false
//!    positives") vs off;
//! 3. **detection threshold** — sweep around the paper's 1 % ("higher
//!    values reduce false positives but increase false negatives");
//! 4. **threshold base** — fixed epoch total vs re-evaluated total;
//! 5. **voter quorum** — the `min_voters = 2` guard vs the unguarded
//!    algorithm (DESIGN.md's robustness note).

use vigil::prelude::*;
use vigil_bench::{
    accuracy_pct, banner, precision_pct, print_engine, recall_pct, sweep_table, Scale, SeriesRow,
};

const K: u32 = 6;

/// One ablation sweep: each knob variant is a sweep point of the engine's
/// flat grid.
fn ablation_spec<'a, X>(
    id: &'a str,
    knob: &'a str,
    scale: Scale,
    values: Vec<X>,
    alg1: impl Fn(&X) -> Algorithm1Config + Sync + 'a,
) -> SweepSpec<'a, X> {
    SweepSpec::new(id, knob, values, move |x| {
        scale.apply(scenarios::ablation_base(K, alg1(x)))
    })
}

fn main() {
    banner(
        "ablation",
        "vote weight / adjustment / threshold ablations",
        "§5.1 design choices",
    );
    let scale = Scale::resolve(4, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    println!("\n1) vote weight (k = {K}):\n");
    let weights = [
        (VoteWeight::ReciprocalPathLength, "1/h (paper)"),
        (VoteWeight::Unit, "1"),
        (VoteWeight::ReciprocalSquared, "1/h^2"),
    ];
    for (i, (_, label)) in weights.iter().enumerate() {
        println!("   [{i}] weight = {label}");
    }
    let spec = ablation_spec(
        "ablation_weight",
        "weight [idx]",
        scale,
        (0..weights.len()).collect(),
        |&i| Algorithm1Config {
            weight: weights[i].0,
            ..Algorithm1Config::default()
        },
    );
    sweep_table(&engine, &spec, |&i, report| SeriesRow {
        x: i as f64,
        values: vec![
            ("acc %".into(), accuracy_pct(&report.vigil)),
            ("prec %".into(), precision_pct(&report.vigil)),
            ("rec %".into(), recall_pct(&report.vigil)),
        ],
    });

    println!("\n2) vote adjustment (k = {K}):\n");
    for (i, adjust) in [(0, true), (1, false)] {
        println!("   [{i}] adjust = {adjust}");
    }
    let spec = ablation_spec(
        "ablation_adjust",
        "adjust [idx]",
        scale,
        vec![true, false],
        |&adjust| Algorithm1Config {
            adjust,
            ..Algorithm1Config::default()
        },
    );
    sweep_table(&engine, &spec, |&adjust, report| SeriesRow {
        x: if adjust { 0.0 } else { 1.0 },
        values: vec![
            ("prec %".into(), precision_pct(&report.vigil)),
            ("rec %".into(), recall_pct(&report.vigil)),
            (
                "false pos".into(),
                report.vigil.pooled.confusion.false_positives as f64,
            ),
        ],
    });
    println!("   paper: adjustment cuts false positives ~5%.");

    println!("\n3) detection threshold sweep (k = {K}):\n");
    let spec = ablation_spec(
        "ablation_threshold",
        "threshold (%)",
        scale,
        vec![0.001, 0.005, 0.01, 0.02, 0.05],
        |&frac| Algorithm1Config {
            threshold_frac: frac,
            ..Algorithm1Config::default()
        },
    );
    sweep_table(&engine, &spec, |&frac, report| SeriesRow {
        x: frac * 100.0,
        values: vec![
            ("prec %".into(), precision_pct(&report.vigil)),
            ("rec %".into(), recall_pct(&report.vigil)),
        ],
    });
    println!("   paper: 1% balances precision/recall; higher trades recall for precision.");

    println!("\n4) threshold base (k = {K}):\n");
    let bases = [
        (ThresholdBase::Initial, "initial (fixed bar)"),
        (ThresholdBase::Current, "current (adaptive bar)"),
    ];
    for (i, (_, label)) in bases.iter().enumerate() {
        println!("   [{i}] base = {label}");
    }
    let spec = ablation_spec(
        "ablation_base",
        "base [idx]",
        scale,
        (0..bases.len()).collect(),
        |&i| Algorithm1Config {
            threshold_base: bases[i].0,
            ..Algorithm1Config::default()
        },
    );
    sweep_table(&engine, &spec, |&i, report| SeriesRow {
        x: i as f64,
        values: vec![
            ("prec %".into(), precision_pct(&report.vigil)),
            ("rec %".into(), recall_pct(&report.vigil)),
        ],
    });

    println!("\n5) voter quorum (k = {K}):\n");
    let spec = ablation_spec(
        "ablation_quorum",
        "min voters",
        scale,
        vec![1u32, 2, 3],
        |&min_voters| Algorithm1Config {
            min_voters,
            ..Algorithm1Config::default()
        },
    );
    sweep_table(&engine, &spec, |&min_voters, report| SeriesRow {
        x: f64::from(min_voters),
        values: vec![
            ("prec %".into(), precision_pct(&report.vigil)),
            ("rec %".into(), recall_pct(&report.vigil)),
            (
                "false pos".into(),
                report.vigil.pooled.confusion.false_positives as f64,
            ),
        ],
    });
    println!("   quorum 1 reproduces the unguarded algorithm (lone drops mint");
    println!("   detections); 3 starts costing recall on faint links.");
}
