//! Ablations of 007's §5.1 design choices (the DESIGN.md ▸ items):
//!
//! 1. **vote weight** — the paper's `1/h` vs flat `1` vs `1/h²`;
//! 2. **vote adjustment** — on (paper; "5 % reduction in false
//!    positives") vs off;
//! 3. **detection threshold** — sweep around the paper's 1 % ("higher
//!    values reduce false positives but increase false negatives");
//! 4. **threshold base** — fixed epoch total vs re-evaluated total;
//! 5. **voter quorum** — the `min_voters = 2` guard vs the unguarded
//!    algorithm (DESIGN.md's robustness note).

use vigil::prelude::*;
use vigil_bench::{
    accuracy_pct, banner, precision_pct, print_table, recall_pct, write_json, Scale, SeriesRow,
};

fn run_with(alg1: Algorithm1Config, scale: &Scale, k: u32) -> ExperimentReport {
    let cfg = scale.apply(scenarios::ablation_base(k, alg1));
    run_experiment(&cfg)
}

fn main() {
    banner(
        "ablation",
        "vote weight / adjustment / threshold ablations",
        "§5.1 design choices",
    );
    let scale = Scale::resolve(4, 2);
    let k = 6;

    println!("\n1) vote weight (k = {k}):\n");
    let mut rows = Vec::new();
    for (i, (weight, label)) in [
        (VoteWeight::ReciprocalPathLength, "1/h (paper)"),
        (VoteWeight::Unit, "1"),
        (VoteWeight::ReciprocalSquared, "1/h^2"),
    ]
    .into_iter()
    .enumerate()
    {
        let report = run_with(
            Algorithm1Config {
                weight,
                ..Algorithm1Config::default()
            },
            &scale,
            k,
        );
        println!("   [{i}] weight = {label}");
        rows.push(SeriesRow {
            x: i as f64,
            values: vec![
                ("acc %".into(), accuracy_pct(&report.vigil)),
                ("prec %".into(), precision_pct(&report.vigil)),
                ("rec %".into(), recall_pct(&report.vigil)),
            ],
        });
    }
    print_table("weight [idx]", &rows);
    write_json("ablation_weight", &rows);

    println!("\n2) vote adjustment (k = {k}):\n");
    let mut rows = Vec::new();
    for (i, adjust) in [(0, true), (1, false)] {
        let report = run_with(
            Algorithm1Config {
                adjust,
                ..Algorithm1Config::default()
            },
            &scale,
            k,
        );
        println!("   [{i}] adjust = {adjust}");
        rows.push(SeriesRow {
            x: f64::from(i),
            values: vec![
                ("prec %".into(), precision_pct(&report.vigil)),
                ("rec %".into(), recall_pct(&report.vigil)),
                (
                    "false pos".into(),
                    report.vigil.pooled.confusion.false_positives as f64,
                ),
            ],
        });
    }
    print_table("adjust [idx]", &rows);
    println!("   paper: adjustment cuts false positives ~5%.");
    write_json("ablation_adjust", &rows);

    println!("\n3) detection threshold sweep (k = {k}):\n");
    let mut rows = Vec::new();
    for &frac in &[0.001, 0.005, 0.01, 0.02, 0.05] {
        let report = run_with(
            Algorithm1Config {
                threshold_frac: frac,
                ..Algorithm1Config::default()
            },
            &scale,
            k,
        );
        rows.push(SeriesRow {
            x: frac * 100.0,
            values: vec![
                ("prec %".into(), precision_pct(&report.vigil)),
                ("rec %".into(), recall_pct(&report.vigil)),
            ],
        });
    }
    print_table("threshold (%)", &rows);
    println!("   paper: 1% balances precision/recall; higher trades recall for precision.");
    write_json("ablation_threshold", &rows);

    println!("\n4) threshold base (k = {k}):\n");
    let mut rows = Vec::new();
    for (i, (base, label)) in [
        (ThresholdBase::Initial, "initial (fixed bar)"),
        (ThresholdBase::Current, "current (adaptive bar)"),
    ]
    .into_iter()
    .enumerate()
    {
        let report = run_with(
            Algorithm1Config {
                threshold_base: base,
                ..Algorithm1Config::default()
            },
            &scale,
            k,
        );
        println!("   [{i}] base = {label}");
        rows.push(SeriesRow {
            x: i as f64,
            values: vec![
                ("prec %".into(), precision_pct(&report.vigil)),
                ("rec %".into(), recall_pct(&report.vigil)),
            ],
        });
    }
    print_table("base [idx]", &rows);
    write_json("ablation_base", &rows);

    println!("\n5) voter quorum (k = {k}):\n");
    let mut rows = Vec::new();
    for min_voters in [1u32, 2, 3] {
        let report = run_with(
            Algorithm1Config {
                min_voters,
                ..Algorithm1Config::default()
            },
            &scale,
            k,
        );
        rows.push(SeriesRow {
            x: f64::from(min_voters),
            values: vec![
                ("prec %".into(), precision_pct(&report.vigil)),
                ("rec %".into(), recall_pct(&report.vigil)),
                (
                    "false pos".into(),
                    report.vigil.pooled.confusion.false_positives as f64,
                ),
            ],
        });
    }
    print_table("min voters", &rows);
    println!("   quorum 1 reproduces the unguarded algorithm (lone drops mint");
    println!("   detections); 3 starts costing recall on faint links.");
    write_json("ablation_quorum", &rows);
}
