//! Figure 11: does *where* the failed link sits change detectability?
//! Single failures pinned to each location class — ToR→T1, T1→T2,
//! T2→T1, T1→ToR — over a drop-rate sweep.
//!
//! Paper result: all four locations are detected comparably (level-2
//! links see slightly less traffic per link, so their recall ramps a bit
//! later).

use vigil::prelude::*;
use vigil_bench::{banner, precision_pct, print_engine, recall_pct, sweep_table, Scale, SeriesRow};

fn main() {
    banner(
        "fig11",
        "Algorithm 1 precision/recall vs drop rate, by failed-link location",
        "§6.6 Figure 11: all location classes detectable",
    );
    let scale = Scale::resolve(5, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    let kinds = [
        (LinkKind::TorToT1, "ToR-T1"),
        (LinkKind::T1ToT2, "T1-T2"),
        (LinkKind::T2ToT1, "T2-T1"),
        (LinkKind::T1ToTor, "T1-ToR"),
    ];
    for (kind, label) in kinds {
        println!("\nfailure location: {label}\n");
        let id = format!("fig11_{label}");
        let spec = SweepSpec::new(
            &id,
            "drop rate (%)",
            vec![2.5e-4, 1e-3, 5e-3, 1e-2],
            move |&rate| scale.apply(scenarios::fig11_location(kind, rate)),
        );
        sweep_table(&engine, &spec, |&rate, report| SeriesRow {
            x: rate * 100.0,
            values: vec![
                ("007 prec %".into(), precision_pct(&report.vigil)),
                ("007 rec %".into(), recall_pct(&report.vigil)),
            ],
        });
    }
    println!("\npaper: detection works at every tier; recall ramps with drop rate in");
    println!("each class, with level-2 (T1-T2/T2-T1) slightly later than level-1.");
}
