//! Figure 14 (Appendix A): network-related VM reboots per hour of a day
//! that pre-007 monitoring could not explain — on average ≈ 10 per hour.
//!
//! The reproduction replays a diurnal reboot process (Poisson, λ peaking
//! in business hours), runs 007 on each incident's epoch, and prints the
//! per-hour totals alongside how many 007 explains — the paper's point
//! being that the "unexplained" column collapses once 007 is deployed.
//! Hours are independent: each is one sweep-engine task.

use rand::Rng;
use vigil::prelude::*;
use vigil::sweep::task_rng;
use vigil_bench::{banner, print_engine, write_json, Scale};
use vigil_fabric::faults::LinkFaults;
use vigil_topology::Node;

fn main() {
    banner(
        "fig14",
        "network-related VM reboots per hour of day",
        "Appendix A Figure 14: ~10 unexplained reboots/hour before 007",
    );
    let scale = Scale::resolve(1, 1);
    let engine = SweepEngine::from_env();
    print_engine(&engine);
    let per_hour_base = if scale.fast { 3.0 } else { 10.0 };

    let topo = ClosTopology::new(ClosParams::tiny(), 14).expect("valid");
    let cfg = RunConfig {
        traffic: TrafficSpec {
            conns_per_host: ConnCount::Fixed(20),
            ..TrafficSpec::paper_default()
        },
        baselines: Baselines {
            integer: false,
            binary: false,
            ..Baselines::default()
        },
        ..RunConfig::default()
    };

    let rows: Vec<(u32, u64, u64)> = engine.run_tasks(24, |hour_idx| {
        let hour = hour_idx as u32;
        let mut rng = task_rng(0x14, hour_idx);
        // Diurnal modulation: deployments (and their fallout) peak during
        // the working day.
        let diurnal = 1.0 + 0.5 * (std::f64::consts::PI * (f64::from(hour) - 3.0) / 12.0).sin();
        let lambda = per_hour_base * diurnal;
        // Poisson sampling via thinning of a fine grid.
        let mut reboots = 0u64;
        let grid = 200;
        for _ in 0..grid {
            if rng.gen_bool((lambda / f64::from(grid)).min(1.0)) {
                reboots += 1;
            }
        }

        let mut explained = 0u64;
        for _ in 0..reboots {
            // Each reboot = a VM whose storage flows crossed a transiently
            // bad host↔ToR link this hour (the §8.3 dominant cause).
            let mut faults = LinkFaults::new(topo.num_links());
            faults.set_noise(RateRange::PAPER_NOISE, &mut rng);
            let host = vigil_topology::HostId(rng.gen_range(0..topo.num_hosts() as u32));
            let up = topo
                .link_between(Node::Host(host), Node::Switch(topo.host_tor(host)))
                .expect("uplink");
            faults.fail_link(up, rng.gen_range(0.1..0.5));
            let run = vigil::run_epoch(&topo, &faults, &cfg, &mut rng);
            if run.detection.detected_links().contains(&up) {
                explained += 1;
            }
        }
        (hour, reboots, explained)
    });

    println!("\n{:>6} {:>10} {:>12}", "hour", "reboots", "explained");
    let mut total = 0u64;
    let mut total_explained = 0u64;
    for &(hour, reboots, explained) in &rows {
        println!("{:>6} {:>10} {:>12}", hour, reboots, explained);
        total += reboots;
        total_explained += explained;
    }
    println!(
        "\nday total: {} network-related reboots, {} explained by 007 ({:.1}%)",
        total,
        total_explained,
        total_explained as f64 / total.max(1) as f64 * 100.0
    );
    println!("paper: ~10/hour ALL unexplained pre-007; every one explained after (§8.3).");
    write_json("fig14", &rows);
}
