//! Table 1: the distribution of ICMP replies per second per switch while
//! 007 runs with Theorem 1's pacing, measured on the packet-level
//! emulator.
//!
//! Paper result (one production week):
//!
//! | T = 0 | 0 < T ≤ 3 | T > 3 | max(T) |
//! |-------|-----------|-------|--------|
//! | 69 %  | 30.98 %   | 0.02 %| 11     |
//!
//! i.e. the cap `Tmax = 100` is never approached.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vigil::prelude::*;
use vigil_agents::{HostAgent, HostPacer, ProbeTracer, TcpMonitor};
use vigil_bench::{banner, write_json, Scale};
use vigil_fabric::flowsim::simulate_epoch;
use vigil_fabric::netsim::{NetSim, NetSimConfig};

fn main() {
    banner(
        "table1",
        "ICMP replies per second per switch under 007's traceroute load",
        "§8.1 Table 1: 69% zero, 30.98% ≤3, 0.02% >3, max 11 ≤ Tmax=100",
    );
    let scale = Scale::resolve(1, 1);
    let epochs = if scale.fast { 4 } else { 20 };
    let epoch_seconds = 30.0;

    let params = ClosParams {
        npod: 2,
        n0: 8,
        n1: 6,
        n2: 6,
        hosts_per_tor: 6,
    };
    let topo = ClosTopology::new(params, 3).expect("valid");
    let mut rng = ChaCha8Rng::seed_from_u64(0x1Cu64);
    let plan = FaultPlan {
        failures: 2,
        failure_rate: RateRange { lo: 1e-3, hi: 5e-3 },
        ..FaultPlan::paper_default(2)
    };
    let faults = plan.build(&topo, &mut rng);

    let mut sim = NetSim::new(topo.clone(), faults.clone(), NetSimConfig::default(), 77);
    let traffic = TrafficSpec {
        conns_per_host: ConnCount::Fixed(30),
        ..TrafficSpec::paper_default()
    };
    let monitor = TcpMonitor::new();
    let mut total_traces = 0u64;

    for _epoch in 0..epochs {
        let epoch_start = sim.now();
        let outcome = simulate_epoch(&topo, &faults, &traffic, &SimConfig::default(), &mut rng);
        // Each host paces itself by Theorem 1 and spreads its traces over
        // the epoch (retransmissions arrive throughout the 30 s).
        for host in topo.hosts() {
            let mut agent =
                HostAgent::new(host, HostPacer::from_theorem1(&topo, 100.0, epoch_seconds));
            let events: Vec<_> = monitor.events_for_host(host, &outcome.flows).collect();
            for event in events {
                let offset: f64 = rng.gen_range(0.0..epoch_seconds * 0.95);
                let target = epoch_start + offset;
                if target > sim.now() {
                    sim.advance(target - sim.now());
                }
                let mut tracer = ProbeTracer::new(&mut sim);
                if agent.handle_event(&event, &mut tracer).is_some() {
                    total_traces += 1;
                }
            }
        }
        let next_epoch = epoch_start + epoch_seconds;
        if next_epoch > sim.now() {
            sim.advance(next_epoch - sim.now());
        }
    }

    let acc = sim.icmp_accounting();
    let h = acc.table1_histogram();
    println!(
        "\nobservation window: {} epochs × {}s, {} switches, {} traceroutes sent",
        epochs,
        epoch_seconds,
        topo.num_switches(),
        total_traces
    );
    println!("\n{:>12} {:>12} {:>10}", "bin", "cells", "share");
    let labels = ["T = 0", "0 < T ≤ 3", "T > 3"];
    for (i, label) in labels.iter().enumerate() {
        println!(
            "{:>12} {:>12} {:>9.2}%",
            label,
            h.counts()[i],
            h.fraction(i) * 100.0
        );
    }
    println!(
        "\nmax(T) = {}   (paper: 11; cap Tmax = 100)",
        acc.max_per_second()
    );
    assert!(
        f64::from(acc.max_per_second()) <= 100.0,
        "Theorem 1 violated: a switch exceeded Tmax"
    );
    println!("Theorem 1 check: max(T) ≤ Tmax ✓");

    // Theorem 1's closed form for this topology, for reference.
    let ct = vigil_topology::bounds::theorem1_ct_bound(topo.params(), 100.0);
    println!(
        "theorem 1 bound: Ct = {ct:.2} traceroutes/s/host (budget {} per epoch)",
        (ct * epoch_seconds) as u64
    );
    write_json(
        "table1",
        &serde_json::json!({
            "bins": labels,
            "counts": h.counts(),
            "fractions": [h.fraction(0), h.fraction(1), h.fraction(2)],
            "max_t": acc.max_per_second(),
            "traces": total_traces,
        }),
    );
}
