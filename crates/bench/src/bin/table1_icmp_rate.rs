//! Table 1: the distribution of ICMP replies per second per switch while
//! 007 runs with Theorem 1's pacing, measured on the packet-level
//! emulator.
//!
//! Paper result (one production week):
//!
//! | T = 0 | 0 < T ≤ 3 | T > 3 | max(T) |
//! |-------|-----------|-------|--------|
//! | 69 %  | 30.98 %   | 0.02 %| 11     |
//!
//! i.e. the cap `Tmax = 100` is never approached.
//!
//! Each epoch is an independent 30-second observation window with its
//! own packet emulator — one sweep-engine task; the per-(switch, second)
//! histograms sum across windows and `max(T)` is the max over windows.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vigil::prelude::*;
use vigil::sweep::task_rng;
use vigil_agents::{HostAgent, HostPacer, ProbeTracer, TcpMonitor};
use vigil_bench::{banner, print_engine, write_json, Scale};
use vigil_fabric::flowsim::simulate_epoch;
use vigil_fabric::netsim::{NetSim, NetSimConfig};

fn main() {
    banner(
        "table1",
        "ICMP replies per second per switch under 007's traceroute load",
        "§8.1 Table 1: 69% zero, 30.98% ≤3, 0.02% >3, max 11 ≤ Tmax=100",
    );
    let scale = Scale::resolve(1, 1);
    let engine = SweepEngine::from_env();
    print_engine(&engine);
    let epochs = if scale.fast { 4 } else { 20 };
    let epoch_seconds = 30.0;

    let params = ClosParams {
        npod: 2,
        n0: 8,
        n1: 6,
        n2: 6,
        hosts_per_tor: 6,
    };
    let topo = ClosTopology::new(params, 3).expect("valid");
    let mut rng = ChaCha8Rng::seed_from_u64(0x1Cu64);
    let plan = FaultPlan {
        failures: 2,
        failure_rate: RateRange { lo: 1e-3, hi: 5e-3 },
        ..FaultPlan::paper_default(2)
    };
    let faults = plan.build(&topo, &mut rng);

    let traffic = TrafficSpec {
        conns_per_host: ConnCount::Fixed(30),
        ..TrafficSpec::paper_default()
    };
    let monitor = TcpMonitor::new();

    let windows = engine.run_tasks(epochs, |epoch| {
        // Distinct master from the 0x1C setup rng: task_rng(m, 0) == m's
        // stream, which would replay the fault-plan draws.
        let mut rng = task_rng(0xA0_1C, epoch);
        let mut sim = NetSim::new(
            topo.clone(),
            faults.clone(),
            NetSimConfig::default(),
            77 + epoch as u64,
        );
        let mut traces = 0u64;
        let epoch_start = sim.now();
        let outcome = simulate_epoch(&topo, &faults, &traffic, &SimConfig::default(), &mut rng);
        // Each host paces itself by Theorem 1 and spreads its traces over
        // the epoch (retransmissions arrive throughout the 30 s).
        for host in topo.hosts() {
            let mut agent =
                HostAgent::new(host, HostPacer::from_theorem1(&topo, 100.0, epoch_seconds));
            let events: Vec<_> = monitor.events_for_host(host, &outcome.flows).collect();
            for event in events {
                let offset: f64 = rng.gen_range(0.0..epoch_seconds * 0.95);
                let target = epoch_start + offset;
                if target > sim.now() {
                    sim.advance(target - sim.now());
                }
                let mut tracer = ProbeTracer::new(&mut sim);
                if agent.handle_event(&event, &mut tracer).is_some() {
                    traces += 1;
                }
            }
        }
        let next_epoch = epoch_start + epoch_seconds;
        if next_epoch > sim.now() {
            sim.advance(next_epoch - sim.now());
        }

        let acc = sim.icmp_accounting();
        let h = acc.table1_histogram();
        let mut counts = [0u64; 3];
        counts.copy_from_slice(&h.counts()[..3]);
        (counts, acc.max_per_second(), traces)
    });

    // Windows are disjoint in (switch, second) space: bin counts add,
    // max(T) is the max over windows.
    let mut counts = [0u64; 3];
    let mut max_t = 0u32;
    let mut total_traces = 0u64;
    for (window_counts, window_max, traces) in windows {
        for (slot, n) in counts.iter_mut().zip(window_counts) {
            *slot += n;
        }
        max_t = max_t.max(window_max);
        total_traces += traces;
    }
    let total_cells: u64 = counts.iter().sum();

    println!(
        "\nobservation window: {} epochs × {}s, {} switches, {} traceroutes sent",
        epochs,
        epoch_seconds,
        topo.num_switches(),
        total_traces
    );
    println!("\n{:>12} {:>12} {:>10}", "bin", "cells", "share");
    let labels = ["T = 0", "0 < T ≤ 3", "T > 3"];
    for (i, label) in labels.iter().enumerate() {
        println!(
            "{:>12} {:>12} {:>9.2}%",
            label,
            counts[i],
            counts[i] as f64 / total_cells.max(1) as f64 * 100.0
        );
    }
    println!("\nmax(T) = {max_t}   (paper: 11; cap Tmax = 100)");
    assert!(
        f64::from(max_t) <= 100.0,
        "Theorem 1 violated: a switch exceeded Tmax"
    );
    println!("Theorem 1 check: max(T) ≤ Tmax ✓");

    // Theorem 1's closed form for this topology, for reference.
    let ct = vigil_topology::bounds::theorem1_ct_bound(topo.params(), 100.0);
    println!(
        "theorem 1 bound: Ct = {ct:.2} traceroutes/s/host (budget {} per epoch)",
        (ct * epoch_seconds) as u64
    );
    write_json(
        "table1",
        &serde_json::json!({
            "bins": labels,
            "counts": counts.to_vec(),
            "fractions": [
                counts[0] as f64 / total_cells.max(1) as f64,
                counts[1] as f64 / total_cells.max(1) as f64,
                counts[2] as f64 / total_cells.max(1) as f64,
            ],
            "max_t": max_t,
            "traces": total_traces,
        }),
    );
}
