//! Figure 9: a single *hot ToR* sinks 10–70 % of all flows, with 0–15
//! simultaneous failures.
//!
//! Paper result: "007 can tolerate up to 50 % skew … with negligible
//! accuracy degradation. However, skews above 50 % negatively impact its
//! accuracy in the presence of a large number of failures (≥ 10)."

use vigil::prelude::*;
use vigil_bench::{accuracy_pct, banner, print_engine, print_table, write_json, Scale, SeriesRow};

fn main() {
    banner(
        "fig09",
        "accuracy vs #failures under a hot-ToR sink",
        "§6.5 Figure 9: fine to 50% skew; >50% skew + ≥10 failures degrades",
    );
    let scale = Scale::resolve(5, 2);
    let engine = SweepEngine::from_env();
    print_engine(&engine);

    // One flat sweep over the (failures × skew) grid, so every cell's
    // trials shard across the same worker pool.
    let failures = [1u32, 5, 10, 15];
    let skews = [0.1, 0.3, 0.5, 0.7];
    let grid: Vec<(u32, f64)> = failures
        .iter()
        .flat_map(|&k| skews.iter().map(move |&s| (k, s)))
        .collect();
    let spec = SweepSpec::new("fig09", "#failures", grid, move |&(k, skew)| {
        scale.apply(scenarios::fig09_hot_tor(skew, k))
    });
    let reports = engine.run_sweep(&spec);

    let mut rows = Vec::new();
    for (i, &k) in failures.iter().enumerate() {
        let values = skews
            .iter()
            .enumerate()
            .map(|(j, &skew)| {
                let report = &reports[i * skews.len() + j];
                (
                    format!("{}% skew acc %", (skew * 100.0) as u32),
                    accuracy_pct(&report.vigil),
                )
            })
            .collect();
        rows.push(SeriesRow {
            x: f64::from(k),
            values,
        });
    }
    print_table("#failures", &rows);
    println!("\npaper: rows ≤ 50% skew stay flat and high; the 70% column dips once");
    println!("the failure count reaches ~10.");
    write_json("fig09", &rows);
}
