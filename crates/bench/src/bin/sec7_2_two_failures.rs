//! §7.2: per-connection failure analysis on the test cluster with two
//! simultaneous failures of very different severities (0.2 % and 0.05 %).
//!
//! Paper result: over flows that cross at least one of the two failed
//! links, 007 attributes the drops to the correct link (the one with the
//! higher drop rate) 90.47 % of the time. Trials are independent — each
//! is one sweep-engine task.

use rand::Rng;
use vigil::prelude::*;
use vigil::sweep::task_rng;
use vigil_analysis::blame_flow;
use vigil_bench::{banner, print_engine, write_json, Scale};

fn main() {
    banner(
        "sec7_2",
        "per-flow blame with two unequal failures (0.2% vs 0.05%)",
        "§7.2: 90.47% of flows through a failed link blamed on the correct link",
    );
    let scale = Scale::resolve(10, 3);
    let engine = SweepEngine::from_env();
    print_engine(&engine);
    let base = scenarios::sec7_2_two_failures();

    let per_trial = engine.run_tasks(scale.trials, |trial| {
        let mut rng = task_rng(0x72, trial);
        let topo = ClosTopology::new(base.params, rng.gen()).expect("valid");
        let faults = base.faults.build(&topo, &mut rng);

        let mut scored = 0u64;
        let mut correct = 0u64;
        for _epoch in 0..scale.epochs {
            let run = vigil::run_epoch(&topo, &faults, &base.run, &mut rng);
            let flow_idx = run.flow_index();
            for (i, ev) in run.evidence.iter().enumerate() {
                let flow = &run.outcome.flows[flow_idx
                    .get(&run.reports[i].tuple)
                    .expect("reported tuples come from the epoch's flow table")];
                // Paper: "we only know the ground truth when the flow goes
                // through at least one of the two failed links".
                let crosses = flow
                    .path
                    .links
                    .iter()
                    .any(|l| faults.failed_set().contains(l));
                if !crosses {
                    continue;
                }
                let Some(truth) = flow.dominant_drop_link() else {
                    continue;
                };
                if let Some(blamed) = blame_flow(&run.detection.raw_tally, ev) {
                    scored += 1;
                    if blamed == truth {
                        correct += 1;
                    }
                }
            }
        }
        (scored, correct)
    });
    let scored: u64 = per_trial.iter().map(|(s, _)| s).sum();
    let correct: u64 = per_trial.iter().map(|(_, c)| c).sum();

    let acc = correct as f64 / scored.max(1) as f64;
    println!(
        "\nflows through a failed link: {scored}; blamed correctly: {correct} ({:.2}%)",
        acc * 100.0
    );
    println!("paper: 90.47%");
    write_json(
        "sec7_2",
        &serde_json::json!({ "scored": scored, "correct": correct, "accuracy": acc }),
    );
}
