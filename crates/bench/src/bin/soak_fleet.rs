//! `soak_fleet` — the chaos soak as a bench artifact: a long-running
//! distributed fleet under an escalating churn schedule, with the
//! robustness invariants asserted (not eyeballed) and the full
//! [`SoakReport`] written to `BENCH_soak.json`.
//!
//! The schedule escalates chaos across thirds of the run — a quiet
//! first third, mild corruption + resets in the second, then heavy
//! corruption, duplication, and reset-with-partition in the last — and
//! performs one agent kill/restart plus one collector kill/`--resume`
//! mid-run. The run fails (exit 1) unless:
//!
//! - the final tally is **byte-identical** to the chaos-free stream,
//! - **zero epochs leaked** (every window closed exactly once),
//! - **nothing was shed** and **no host was evicted**,
//! - peak RSS late in the run stays within 1.5× of the early peak
//!   (plus a 16 MiB allowance for allocator noise),
//! - the idle collector burned < 250 ms of CPU in its 400 ms probe.
//!
//! Scale knobs: `VIGIL_FAST=1` shrinks to a CI smoke run (~a minute);
//! `VIGIL_EPOCHS=N` sets the horizon explicitly — on this fabric one
//! epoch is a few wall-clock seconds, so hundreds of epochs give the
//! hours-scale soak the paper's always-on deployment story calls for.

use std::time::Duration;

use vigil::prelude::*;
use vigil::{CollectorConfig, ExperimentConfig};
use vigil_wire::chaos::{ChaosPlan, ChaosSchedule};

fn main() {
    let fast = std::env::var("VIGIL_FAST").is_ok_and(|v| v == "1");
    let epochs = std::env::var("VIGIL_EPOCHS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if fast { 4 } else { 30 });

    let config = ExperimentConfig {
        name: "soak-fleet".into(),
        params: ClosParams::tiny(),
        faults: FaultPlan {
            failure_rate: RateRange::fixed(0.05),
            ..FaultPlan::paper_default(2)
        },
        run: RunConfig {
            traffic: TrafficSpec {
                conns_per_host: ConnCount::Fixed(30),
                ..TrafficSpec::paper_default()
            },
            ..RunConfig::default()
        },
        epochs,
        trials: 1,
        seed: 51,
    };

    // Escalating chaos by thirds. Every plan keeps its reset gap wider
    // than one epoch's frame volume so the fleet always has a window in
    // which a full epoch can land — the loss-recoverable regime.
    let third = (epochs as u64 / 3).max(1);
    let mild =
        ChaosPlan::parse("seed=11,corrupt=0.01,dup=0.01,reset_every=400").expect("mild chaos plan");
    let heavy = ChaosPlan::parse(
        "seed=13,corrupt=0.03,truncate=0.01,dup=0.02,reset_every=250,partition=0.3:3",
    )
    .expect("heavy chaos plan");
    let chaos = ChaosSchedule::new(vec![
        (0, ChaosPlan::quiet(7)),
        (third, mild),
        (2 * third, heavy),
    ]);

    let dir = std::env::temp_dir().join(format!("vigil-soak-fleet-{}", std::process::id()));
    let spec = SoakSpec {
        config,
        agents: 2,
        chaos: Some(chaos),
        agent_kill_after: Some(Duration::from_millis(if fast { 50 } else { 2_000 })),
        collector_kill_window: Some((epochs / 2).max(1)),
        resilience: ResilienceConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
            ..ResilienceConfig::default()
        },
        collector: CollectorConfig::default(),
        dir: dir.clone(),
        report_path: Some("BENCH_soak.json".into()),
    };

    let report = run_soak(&spec).expect("soak run");
    println!(
        "soak_fleet: {} windows in {:.1}s — {} reconnects ({} agent-side), \
         {} quarantined frames, {} agent kills, {} collector kills, \
         RSS {} -> {} kB",
        report.windows,
        report.wall_ms / 1e3,
        report.collector_reconnects,
        report.agent_reconnects,
        report.quarantined_frames,
        report.agent_kills,
        report.collector_kills,
        report.rss_peak_early_kb,
        report.rss_peak_late_kb,
    );

    let mut bad = Vec::new();
    if !report.byte_identical {
        bad.push("tally diverged from the chaos-free stream".to_string());
    }
    if report.leaked_epochs != 0 {
        bad.push(format!("{} epoch(s) leaked", report.leaked_epochs));
    }
    if report.shed != 0 {
        bad.push(format!("{} event(s) shed", report.shed));
    }
    if report.hosts_evicted != 0 {
        bad.push(format!("{} host(s) evicted", report.hosts_evicted));
    }
    let rss_ceiling = report.rss_peak_early_kb + report.rss_peak_early_kb / 2 + 16 * 1024;
    if report.rss_peak_late_kb > rss_ceiling {
        bad.push(format!(
            "RSS grew: early peak {} kB, late peak {} kB (ceiling {} kB)",
            report.rss_peak_early_kb, report.rss_peak_late_kb, rss_ceiling
        ));
    }
    if report.idle_cpu_ms >= 250 {
        bad.push(format!(
            "idle collector burned {} ms of CPU in 400 ms — something polls",
            report.idle_cpu_ms
        ));
    }
    if !bad.is_empty() {
        // Keep the scratch dir: it holds the tally diff on divergence.
        eprintln!(
            "soak_fleet: FAILED: {} (scratch kept at {})",
            bad.join("; "),
            dir.display()
        );
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("soak_fleet: all invariants held (report in BENCH_soak.json)");
}
