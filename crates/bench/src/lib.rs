//! Shared support for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Every binary follows the same shape:
//!
//! 1. build the scenario from `vigil::scenarios`,
//! 2. sweep the figure's x-axis, calling `run_experiment` per point,
//! 3. print a fixed-width table of the series the paper plots, with the
//!    paper's reported numbers alongside for comparison,
//! 4. drop a machine-readable JSON copy under `results/`.
//!
//! Scale is controlled by environment variables so CI smoke runs and
//! full reproductions share one binary:
//!
//! * `VIGIL_TRIALS` — independent trials per point (default per bin);
//! * `VIGIL_EPOCHS` — epochs per trial;
//! * `VIGIL_FAST=1` — shrink everything for a quick smoke run;
//! * `VIGIL_THREADS` — worker threads for the sweep engine (default:
//!   all available hardware parallelism). Results are bit-identical at
//!   any thread count.
//!
//! Every binary routes its trial execution through
//! [`vigil::SweepEngine`] — declarative sweeps via [`sweep_table`] /
//! [`vigil::SweepSpec`], bespoke replays via
//! [`vigil::SweepEngine::run_tasks`] — so the whole figure suite is
//! parallel by default.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::io::Write;
use vigil::prelude::*;

/// Sweep scale knobs, resolved from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Trials per experiment point.
    pub trials: usize,
    /// Epochs per trial.
    pub epochs: usize,
    /// True when `VIGIL_FAST=1` requested a smoke run.
    pub fast: bool,
}

impl Scale {
    /// Resolves the scale: defaults, shrunk under `VIGIL_FAST`,
    /// overridden by `VIGIL_TRIALS` / `VIGIL_EPOCHS`.
    pub fn resolve(default_trials: usize, default_epochs: usize) -> Self {
        let fast = std::env::var("VIGIL_FAST").is_ok_and(|v| v == "1");
        let mut trials = if fast {
            default_trials.div_ceil(4).max(1)
        } else {
            default_trials
        };
        let mut epochs = if fast {
            default_epochs.div_ceil(2).max(1)
        } else {
            default_epochs
        };
        if let Ok(v) = std::env::var("VIGIL_TRIALS") {
            trials = v.parse().expect("VIGIL_TRIALS must be an integer");
        }
        if let Ok(v) = std::env::var("VIGIL_EPOCHS") {
            epochs = v.parse().expect("VIGIL_EPOCHS must be an integer");
        }
        Self {
            trials,
            epochs,
            fast,
        }
    }

    /// Applies the scale to a scenario config.
    pub fn apply(&self, mut cfg: ExperimentConfig) -> ExperimentConfig {
        cfg.trials = self.trials;
        cfg.epochs = self.epochs;
        if self.fast {
            // Smoke runs shrink the fabric too.
            if cfg.params == ClosParams::paper_sim() {
                cfg.params = ClosParams {
                    npod: 2,
                    n0: 8,
                    n1: 6,
                    n2: 6,
                    hosts_per_tor: 6,
                };
            }
        }
        cfg
    }
}

/// One row of a printed/serialized series.
#[derive(Debug, Clone, Serialize)]
pub struct SeriesRow {
    /// x-axis value (drop rate, #failures, skew, …).
    pub x: f64,
    /// Metric values keyed by column label, in insertion order.
    pub values: Vec<(String, f64)>,
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, what: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{id}: {what}");
    println!("paper reference: {paper_ref}");
    println!("================================================================");
}

/// Prints a fixed-width table of series rows.
pub fn print_table(x_label: &str, rows: &[SeriesRow]) {
    if rows.is_empty() {
        println!("(no data)");
        return;
    }
    print!("{:>14}", x_label);
    for (label, _) in &rows[0].values {
        print!("  {label:>20}");
    }
    println!();
    for row in rows {
        print!("{:>14}", trim_float(row.x));
        for (_, v) in &row.values {
            if v.is_nan() {
                print!("  {:>20}", "-");
            } else {
                print!("  {:>20.2}", v);
            }
        }
        println!();
    }
}

fn trim_float(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e9 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Serializes results under `results/<id>.json` (best effort — failures
/// to write must not fail the experiment).
pub fn write_json<T: Serialize>(id: &str, data: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{id}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        if let Ok(s) = serde_json::to_string_pretty(data) {
            let _ = f.write_all(s.as_bytes());
            println!("\n(wrote {})", path.display());
        }
    }
}

/// Percentage helpers over an experiment report.
pub fn accuracy_pct(m: &vigil::MethodReport) -> f64 {
    m.pooled.accuracy.value().map_or(f64::NAN, |v| v * 100.0)
}

/// Pooled precision (%), NaN when undefined.
pub fn precision_pct(m: &vigil::MethodReport) -> f64 {
    m.pooled
        .confusion
        .precision()
        .map_or(f64::NAN, |v| v * 100.0)
}

/// Pooled recall (%), NaN when undefined.
pub fn recall_pct(m: &vigil::MethodReport) -> f64 {
    m.pooled.confusion.recall().map_or(f64::NAN, |v| v * 100.0)
}

/// Runs one configured point and returns `(007, integer?, binary?)`
/// method reports.
pub fn run_point(
    cfg: ExperimentConfig,
) -> (
    vigil::ExperimentReport,
    Option<vigil::MethodReport>,
    Option<vigil::MethodReport>,
) {
    let report = run_experiment(&cfg);
    let integer = report.integer.clone();
    let binary = report.binary.clone();
    (report, integer, binary)
}

/// Prints the engine's execution banner line (thread count), so every
/// figure run records how it was sharded.
pub fn print_engine(engine: &SweepEngine) {
    println!("sweep engine: {} worker thread(s)", engine.threads());
}

/// Runs a declarative sweep, turns each point's report into a
/// [`SeriesRow`], prints the fixed-width table, and writes
/// `results/<spec.id>.json`. Returns the rows.
///
/// This is the whole body of a typical figure binary: the hand-rolled
/// "for knob value → run trials → aggregate → print/write" loops live
/// in [`vigil::SweepEngine`] now, sharded over `VIGIL_THREADS` workers
/// with bit-identical output at any width.
pub fn sweep_table<X>(
    engine: &SweepEngine,
    spec: &SweepSpec<'_, X>,
    row: impl Fn(&X, &vigil::ExperimentReport) -> SeriesRow,
) -> Vec<SeriesRow> {
    let reports = engine.run_sweep(spec);
    let rows: Vec<SeriesRow> = spec
        .values
        .iter()
        .zip(&reports)
        .map(|(x, report)| row(x, report))
        .collect();
    print_table(spec.knob, &rows);
    write_json(spec.id, &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_resolution_defaults() {
        // No env manipulation (tests run in parallel); just the defaults
        // path — env overrides are exercised by the bins themselves.
        let s = Scale {
            trials: 5,
            epochs: 2,
            fast: false,
        };
        let cfg = s.apply(ExperimentConfig::default());
        assert_eq!(cfg.trials, 5);
        assert_eq!(cfg.epochs, 2);
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(3.0), "3");
        assert_eq!(trim_float(0.5), "0.5");
    }

    #[test]
    fn table_printing_smoke() {
        print_table(
            "x",
            &[SeriesRow {
                x: 1.0,
                values: vec![("a".into(), 2.0), ("b".into(), f64::NAN)],
            }],
        );
    }
}
