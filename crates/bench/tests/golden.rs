//! Golden-file regression tests for the figure pipeline.
//!
//! Each test runs a figure binary in a scratch directory with a fully
//! pinned environment (`VIGIL_FAST=1 VIGIL_TRIALS=1 VIGIL_EPOCHS=1
//! VIGIL_THREADS=2` — the committed goldens were generated the same way;
//! thread count is pinned only for hygiene, output is thread-invariant)
//! and compares the emitted JSON against `tests/golden/<id>.json` as
//! **serde_json values**, not bytes, with a path-precise diff message.
//!
//! The simulation stack is deterministic end to end (vendored ChaCha8,
//! no ambient entropy, IEEE float ops), so any mismatch is a real
//! behavior change. To regenerate after an *intentional* change:
//!
//! ```text
//! VIGIL_FAST=1 VIGIL_TRIALS=1 VIGIL_EPOCHS=1 VIGIL_THREADS=2 \
//!   cargo run --release -p vigil_bench --bin <binary>
//! cp results/<id>.json crates/bench/tests/golden/
//! ```

use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs `bin` in a fresh scratch dir with the pinned golden environment
/// and returns the parsed `results/<id>.json` files.
fn run_pinned(bin: &str, ids: &[&str]) -> Vec<(String, Value)> {
    let scratch = std::env::temp_dir().join(format!(
        "vigil-golden-{}-{}",
        bin.rsplit('/').next().unwrap_or("bin"),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let out = Command::new(bin)
        .current_dir(&scratch)
        .env_remove("VIGIL_SEED")
        .env("VIGIL_FAST", "1")
        .env("VIGIL_TRIALS", "1")
        .env("VIGIL_EPOCHS", "1")
        .env("VIGIL_THREADS", "2")
        .output()
        .expect("spawn figure binary");
    assert!(
        out.status.success(),
        "{bin} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let parsed = ids
        .iter()
        .map(|id| {
            let path = scratch.join("results").join(format!("{id}.json"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
            let value: Value =
                serde_json::from_str(&text).unwrap_or_else(|e| panic!("{id}.json invalid: {e}"));
            (id.to_string(), value)
        })
        .collect();
    let _ = std::fs::remove_dir_all(&scratch);
    parsed
}

fn golden_path(id: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{id}.json"))
}

/// Recursively locates the first difference, returning its JSON path —
/// the "clear diff message" a bytes-differ assert cannot give.
fn first_diff(path: &str, golden: &Value, actual: &Value) -> Option<String> {
    match (golden, actual) {
        (Value::Map(g), Value::Map(a)) => {
            for (k, gv) in g {
                let Some(av) = actual.get(k) else {
                    return Some(format!("{path}.{k}: missing from actual output"));
                };
                if let Some(d) = first_diff(&format!("{path}.{k}"), gv, av) {
                    return Some(d);
                }
            }
            for (k, _) in a {
                if golden.get(k).is_none() {
                    return Some(format!("{path}.{k}: unexpected new key"));
                }
            }
            None
        }
        (Value::Seq(g), Value::Seq(a)) => {
            if g.len() != a.len() {
                return Some(format!(
                    "{path}: length {} in golden vs {} in actual",
                    g.len(),
                    a.len()
                ));
            }
            g.iter()
                .zip(a)
                .enumerate()
                .find_map(|(i, (gv, av))| first_diff(&format!("{path}[{i}]"), gv, av))
        }
        _ => (golden != actual).then(|| format!("{path}: golden {golden:?} vs actual {actual:?}")),
    }
}

fn assert_matches_golden(bin: &str, ids: &[&str]) {
    for (id, actual) in run_pinned(bin, ids) {
        let path = golden_path(&id);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        let golden: Value = serde_json::from_str(&text).expect("golden parses");
        if let Some(diff) = first_diff(&id, &golden, &actual) {
            panic!(
                "{id}.json diverged from its golden:\n  {diff}\n\
                 If the change is intentional, regenerate with:\n  \
                 VIGIL_FAST=1 VIGIL_TRIALS=1 VIGIL_EPOCHS=1 VIGIL_THREADS=2 \
                 cargo run --release -p vigil_bench --bin <binary> && \
                 cp results/{id}.json crates/bench/tests/golden/"
            );
        }
    }
}

#[test]
fn fig05_matches_golden() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig05_drop_rates"),
        &["fig05a", "fig05b"],
    );
}

#[test]
fn fig09_matches_golden() {
    assert_matches_golden(env!("CARGO_BIN_EXE_fig09_hot_tor"), &["fig09"]);
}

#[test]
fn table1_matches_golden() {
    assert_matches_golden(env!("CARGO_BIN_EXE_table1_icmp_rate"), &["table1"]);
}

#[test]
fn diff_messages_are_path_precise() {
    let golden: Value = serde_json::from_str(r#"{"a": [1, {"b": 2.5}], "c": "x"}"#).unwrap();
    let same = golden.clone();
    assert_eq!(first_diff("root", &golden, &same), None);

    let changed: Value = serde_json::from_str(r#"{"a": [1, {"b": 3.5}], "c": "x"}"#).unwrap();
    let diff = first_diff("root", &golden, &changed).unwrap();
    assert!(diff.starts_with("root.a[1].b:"), "diff was: {diff}");

    let shorter: Value = serde_json::from_str(r#"{"a": [1], "c": "x"}"#).unwrap();
    let diff = first_diff("root", &golden, &shorter).unwrap();
    assert!(diff.contains("length"), "diff was: {diff}");
}
