//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! ECMP hashing and routing, probe crafting/parsing, vote tallying,
//! Algorithm 1 at datacenter link counts, the set-cover solvers, the
//! simplex, an end-to-end epoch, and the multi-trial sweep engine at
//! 1 vs 4 worker threads.
//!
//! The sweep benchmarks additionally write `BENCH_sweep.json` at the
//! repository root — mean/std-dev/iteration-count per variant plus the
//! measured 4-thread speedup — so the PR-over-PR perf trajectory is
//! machine-readable. (The speedup only exceeds 1× on multicore hardware,
//! so the file records the core count it was measured on.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vigil::prelude::*;
use vigil_analysis::{detect, Algorithm1Config, FlowEvidence, VoteTally, VoteWeight};
use vigil_optim::{greedy_cover, min_set_cover, CoverInstance, FlowRow, SearchLimits};
use vigil_optim::{LinearProgram, Relation};
use vigil_packet::traceroute::{parse_time_exceeded, ProbeBuilder};
use vigil_packet::FiveTuple;
use vigil_topology::{ecmp, HostId, LinkId};

fn bench_ecmp(c: &mut Criterion) {
    let tuple = FiveTuple::tcp(
        "10.0.1.2".parse().unwrap(),
        51234,
        "10.1.3.4".parse().unwrap(),
        443,
    );
    c.bench_function("ecmp/hash", |b| {
        b.iter(|| ecmp::hash(black_box(0xdead_beef), black_box(&tuple)))
    });

    let topo = ClosTopology::new(ClosParams::paper_sim(), 7).unwrap();
    let dst = HostId(topo.num_hosts() as u32 - 1);
    c.bench_function("ecmp/route_paper_topology", |b| {
        b.iter(|| topo.route(black_box(&tuple), black_box(HostId(0)), black_box(dst)))
    });
}

fn bench_packets(c: &mut Criterion) {
    let tuple = FiveTuple::tcp(
        "10.0.1.2".parse().unwrap(),
        51234,
        "10.1.3.4".parse().unwrap(),
        443,
    );
    let builder = ProbeBuilder::new(tuple, 42);
    c.bench_function("packet/probe_train_craft", |b| b.iter(|| builder.train()));

    // Craft one ICMP reply to parse.
    let probe = builder.probe(5);
    let pkt = vigil_packet::Ipv4Packet::new_checked(&probe[..]).unwrap();
    let repr = vigil_packet::Ipv4Repr::parse(&pkt).unwrap();
    let mut payload = [0u8; 8];
    payload.copy_from_slice(&pkt.payload()[..8]);
    let msg = vigil_packet::IcmpTimeExceeded {
        original: repr,
        original_payload: payload,
    };
    let mut reply = vec![0u8; msg.buffer_len()];
    msg.emit(&mut reply);
    let from = "10.220.0.1".parse().unwrap();
    c.bench_function("packet/icmp_reply_parse", |b| {
        b.iter(|| parse_time_exceeded(black_box(from), black_box(&reply)))
    });
}

fn synth_evidence(n: usize, num_links: u32, seed: u64) -> Vec<FlowEvidence> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let h = rng.gen_range(2..=6usize);
            let links = (0..h)
                .map(|_| LinkId(rng.gen_range(0..num_links)))
                .collect();
            FlowEvidence::new(links, rng.gen_range(1..4))
        })
        .collect()
}

fn bench_voting(c: &mut Criterion) {
    let evidence = synth_evidence(100_000, 4160, 1);
    c.bench_function("voting/tally_100k_flows_4160_links", |b| {
        b.iter(|| VoteTally::tally(black_box(&evidence), 4160, VoteWeight::ReciprocalPathLength))
    });

    let small = synth_evidence(5_000, 4160, 2);
    c.bench_function("voting/algorithm1_5k_flows_4160_links", |b| {
        b.iter(|| detect(black_box(&small), 4160, &Algorithm1Config::default()))
    });
}

fn bench_solvers(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let rows: Vec<FlowRow> = (0..400)
        .map(|_| FlowRow {
            links: (0..rng.gen_range(2..6))
                .map(|_| rng.gen_range(0..120u32))
                .collect(),
            demand: rng.gen_range(1..5),
        })
        .collect();
    let instance = CoverInstance::new(&rows);
    c.bench_function("solver/greedy_cover_400rows", |b| {
        b.iter(|| greedy_cover(black_box(&instance), false))
    });
    c.bench_function("solver/exact_cover_400rows", |b| {
        b.iter(|| min_set_cover(black_box(&instance), &SearchLimits::default()))
    });

    c.bench_function("solver/simplex_20x40", |b| {
        b.iter_batched(
            || {
                let mut lp = LinearProgram::new(40);
                let mut r = ChaCha8Rng::seed_from_u64(4);
                for v in 0..40 {
                    lp.set_objective(v, 1.0 + r.gen::<f64>());
                }
                for _ in 0..20 {
                    let terms: Vec<(usize, f64)> = (0..5)
                        .map(|_| (r.gen_range(0..40), 1.0 + r.gen::<f64>()))
                        .collect();
                    lp.add_constraint(&terms, Relation::Ge, 1.0);
                }
                lp
            },
            |lp| lp.solve(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_epoch(c: &mut Criterion) {
    let topo = ClosTopology::new(ClosParams::tiny(), 11).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let faults = FaultPlan {
        failure_rate: RateRange::fixed(0.01),
        ..FaultPlan::paper_default(2)
    }
    .build(&topo, &mut rng);
    let cfg = RunConfig {
        traffic: TrafficSpec {
            conns_per_host: ConnCount::Fixed(20),
            ..TrafficSpec::paper_default()
        },
        ..RunConfig::default()
    };
    c.bench_function("epoch/end_to_end_tiny", |b| {
        b.iter(|| {
            let mut r = ChaCha8Rng::seed_from_u64(6);
            vigil::run_epoch(
                black_box(&topo),
                black_box(&faults),
                black_box(&cfg),
                &mut r,
            )
        })
    });
}

fn sweep_config() -> ExperimentConfig {
    ExperimentConfig {
        name: "bench-sweep".into(),
        params: ClosParams::tiny(),
        faults: FaultPlan {
            failure_rate: RateRange::fixed(0.01),
            ..FaultPlan::paper_default(2)
        },
        run: RunConfig {
            traffic: TrafficSpec {
                conns_per_host: ConnCount::Fixed(20),
                ..TrafficSpec::paper_default()
            },
            ..RunConfig::default()
        },
        epochs: 1,
        trials: 8,
        seed: 0xBE_5C,
    }
}

fn bench_sweep(c: &mut Criterion) {
    let cfg = sweep_config();
    c.bench_function("sweep/experiment_8trials_t1", |b| {
        b.iter(|| SweepEngine::new(1).run_experiment(black_box(&cfg)))
    });
    c.bench_function("sweep/experiment_8trials_t4", |b| {
        b.iter(|| SweepEngine::new(4).run_experiment(black_box(&cfg)))
    });

    // Machine-readable perf trajectory: BENCH_sweep.json at the repo root.
    // Only under real measurement (`cargo bench` passes --bench) — the
    // single-iteration smoke pass `cargo test` runs would otherwise
    // clobber the trajectory file with noise.
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    let find = |id: &str| c.results().iter().find(|r| r.id == id).cloned();
    let (Some(t1), Some(t4)) = (
        find("sweep/experiment_8trials_t1"),
        find("sweep/experiment_8trials_t4"),
    ) else {
        return; // filtered out — nothing to record
    };
    let speedup = t1.mean_ns / t4.mean_ns;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let variant = |r: &criterion::BenchResult| {
        serde_json::json!({
            "mean_ns": r.mean_ns,
            "std_dev_ns": r.std_dev_ns,
            "iters": r.iters,
        })
    };
    let doc = serde_json::json!({
        "bench": "sweep/experiment_8trials",
        "trials": 8,
        "threads_compared": vec![1u32, 4],
        "cores_available": cores,
        "t1": variant(&t1),
        "t4": variant(&t4),
        "speedup_t4_over_t1": speedup,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    match serde_json::to_string_pretty(&doc) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("cannot write {path}: {e}");
            } else {
                println!(
                    "sweep speedup (4 threads vs 1, {cores} core(s) available): {speedup:.2}x \
                     -> BENCH_sweep.json"
                );
            }
        }
        Err(e) => eprintln!("cannot serialize BENCH_sweep.json: {e}"),
    }
}

criterion_group!(
    benches,
    bench_ecmp,
    bench_packets,
    bench_voting,
    bench_solvers,
    bench_epoch,
    bench_sweep
);
criterion_main!(benches);
