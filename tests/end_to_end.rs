//! Cross-crate integration tests: the full 007 pipeline over the
//! emulated fabric, exercising every workspace crate together.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vigil::evaluate::evaluate_epoch;
use vigil::prelude::*;
use vigil_fabric::faults::LinkFaults;
use vigil_topology::{HostId, Node};

fn run_config(conns: u32) -> RunConfig {
    RunConfig {
        traffic: TrafficSpec {
            conns_per_host: ConnCount::Fixed(conns),
            ..TrafficSpec::paper_default()
        },
        ..RunConfig::default()
    }
}

#[test]
fn single_failure_localized_end_to_end() {
    let topo = ClosTopology::new(ClosParams::tiny(), 100).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(100);
    let faults = FaultPlan {
        failure_rate: RateRange::fixed(0.03),
        ..FaultPlan::paper_default(1)
    }
    .build(&topo, &mut rng);
    let bad = *faults.failed_set().iter().next().unwrap();

    let run = vigil::run_epoch(&topo, &faults, &run_config(30), &mut rng);
    // The failed link must top the ranking…
    assert_eq!(run.detection.raw_tally.ranking()[0].0, bad);
    // …be detected by Algorithm 1…
    assert!(run.detection.detected_links().contains(&bad));
    // …and per-flow blame must be overwhelmingly correct.
    let report = evaluate_epoch(&run);
    assert!(report.vigil.accuracy.value().unwrap() > 0.85);
    assert_eq!(report.vigil.confusion.recall(), Some(1.0));
}

#[test]
fn multiple_failures_ranked_and_detected() {
    let topo = ClosTopology::new(ClosParams::tiny(), 101).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    let faults = FaultPlan {
        failure_rate: RateRange::fixed(0.05),
        ..FaultPlan::paper_default(3)
    }
    .build(&topo, &mut rng);

    let run = vigil::run_epoch(&topo, &faults, &run_config(40), &mut rng);
    let detected = run.detection.detected_links();
    for bad in faults.failed_set() {
        assert!(
            detected.contains(bad),
            "failed link {bad:?} missed; detected {detected:?}"
        );
    }
}

#[test]
fn experiment_runner_deterministic_across_calls() {
    let cfg = ExperimentConfig {
        name: "determinism".into(),
        params: ClosParams::tiny(),
        faults: FaultPlan::paper_default(1),
        run: run_config(20),
        epochs: 2,
        trials: 2,
        seed: 999,
    };
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a.vote_gaps, b.vote_gaps);
    assert_eq!(a.vigil.pooled.accuracy, b.vigil.pooled.accuracy);
}

#[test]
fn theorem1_budget_holds_in_packet_emulation() {
    // Drive traceroutes as fast as the Theorem 1 pacer allows; no switch
    // may exceed Tmax + burst replies in any second.
    use vigil_agents::{HostAgent, HostPacer, ProbeTracer, TcpMonitor};
    use vigil_fabric::flowsim::simulate_epoch;
    use vigil_fabric::netsim::{NetSim, NetSimConfig};

    let topo = ClosTopology::new(ClosParams::tiny(), 102).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(102);
    let faults = FaultPlan {
        failure_rate: RateRange::fixed(0.05),
        ..FaultPlan::paper_default(2)
    }
    .build(&topo, &mut rng);
    let mut sim = NetSim::new(topo.clone(), faults.clone(), NetSimConfig::default(), 7);

    let traffic = TrafficSpec {
        conns_per_host: ConnCount::Fixed(20),
        ..TrafficSpec::paper_default()
    };
    let outcome = simulate_epoch(&topo, &faults, &traffic, &SimConfig::default(), &mut rng);
    let monitor = TcpMonitor::new();
    for host in topo.hosts() {
        let mut agent = HostAgent::new(host, HostPacer::from_theorem1(&topo, 100.0, 30.0));
        let events: Vec<_> = monitor.events_for_host(host, &outcome.flows).collect();
        for e in events {
            let mut tracer = ProbeTracer::new(&mut sim);
            let _ = agent.handle_event(&e, &mut tracer);
        }
    }
    let max = sim.icmp_accounting().max_per_second();
    assert!(
        f64::from(max) <= 100.0 + 100.0,
        "switch exceeded Tmax+burst: {max}"
    );
}

#[test]
fn flowsim_and_netsim_agree_on_paths() {
    // Identical topology + faults: the flow simulator's recorded path and
    // the packet emulator's probe-discovered path must agree (the §8.2
    // validation as an invariant).
    use vigil_agents::{ProbeTracer, Tracer};
    use vigil_fabric::netsim::{NetSim, NetSimConfig};

    let topo = ClosTopology::new(ClosParams::tiny(), 103).unwrap();
    let faults = LinkFaults::new(topo.num_links());
    let mut sim = NetSim::new(topo.clone(), faults, NetSimConfig::default(), 9);

    for i in 0..10u16 {
        let src = HostId(u32::from(i % 4));
        let dst = HostId(topo.num_hosts() as u32 - 1 - u32::from(i % 3));
        let tuple =
            vigil_packet::FiveTuple::tcp(topo.host_ip(src), 47_000 + i, topo.host_ip(dst), 443);
        let flow_path = topo.route(&tuple, src, dst).unwrap();
        let mut tracer = ProbeTracer::new(&mut sim);
        let discovered = tracer.trace(src, &tuple).expect("clean fabric traces");
        assert_eq!(discovered.links, flow_path.links, "tuple {tuple}");
        assert!(discovered.complete);
    }
}

#[test]
fn noise_classifier_sound_under_ground_truth() {
    // Whatever the agent marks as noise must be ground-truth noise, over
    // several seeds and fault severities.
    for seed in 200..206 {
        let topo = ClosTopology::new(ClosParams::tiny(), seed).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let faults = FaultPlan {
            failure_rate: RateRange { lo: 1e-3, hi: 2e-2 },
            ..FaultPlan::paper_default(2)
        }
        .build(&topo, &mut rng);
        let run = vigil::run_epoch(&topo, &faults, &run_config(30), &mut rng);
        let report = evaluate_epoch(&run);
        assert_eq!(
            report.noise_marked_incorrectly, 0,
            "seed {seed}: agent noise-marked a failure drop"
        );
    }
}

#[test]
fn host_uplink_blackhole_produces_establishment_failures_not_votes() {
    let topo = ClosTopology::new(ClosParams::tiny(), 104).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(104);
    let mut faults = LinkFaults::new(topo.num_links());
    let victim = HostId(3);
    let up = topo
        .link_between(Node::Host(victim), Node::Switch(topo.host_tor(victim)))
        .unwrap();
    faults.fail_link(up, 1.0);

    let run = vigil::run_epoch(&topo, &faults, &run_config(10), &mut rng);
    // The victim's flows never establish ⇒ never traced (§4.2).
    assert!(run.reports.iter().all(|r| r.host != victim));
    // And the fabric recorded the establishment failures.
    let failed = run
        .outcome
        .flows
        .iter()
        .filter(|f| f.src == victim && !f.established)
        .count();
    assert_eq!(failed, 10);
}

#[test]
fn baselines_and_vigil_agree_on_hot_failure() {
    let topo = ClosTopology::new(ClosParams::tiny(), 105).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(105);
    let faults = FaultPlan {
        failure_rate: RateRange::fixed(0.05),
        ..FaultPlan::paper_default(1)
    }
    .build(&topo, &mut rng);
    let bad = *faults.failed_set().iter().next().unwrap();

    let mut cfg = run_config(30);
    cfg.baselines.binary = true;
    let run = vigil::run_epoch(&topo, &faults, &cfg, &mut rng);
    assert!(run.detection.detected_links().contains(&bad));
    assert!(run.integer.as_ref().unwrap().counts.contains_key(&bad.0));
    assert!(run.binary.as_ref().unwrap().links.contains(&bad.0));
}

#[test]
fn link_health_heat_map_tracks_a_persistent_failure() {
    // Multi-epoch pipeline + the §2 heat map: a persistently lossy link
    // must build an EWMA score and a detection streak long enough to be
    // actionable, and cool off after repair.
    let topo = ClosTopology::new(ClosParams::tiny(), 106).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(106);
    let mut faults = FaultPlan {
        failure_rate: RateRange::fixed(0.05),
        ..FaultPlan::paper_default(1)
    }
    .build(&topo, &mut rng);
    let bad = *faults.failed_set().iter().next().unwrap();

    let cfg = run_config(25);
    let mut health = vigil_analysis::LinkHealth::new(topo.num_links(), 0.4);
    for _ in 0..3 {
        let run = vigil::run_epoch(&topo, &faults, &cfg, &mut rng);
        health.absorb(&run.detection);
    }
    assert_eq!(health.heat_map().first().map(|(l, _)| *l), Some(bad));
    assert!(health.current_streak(bad) >= 3);
    assert_eq!(health.actionable(3), vec![bad]);

    // Repair; the streak breaks and the score decays.
    let hot_score = health.score(bad);
    faults.repair_link(bad, RateRange::PAPER_NOISE, &mut rng);
    for _ in 0..3 {
        let run = vigil::run_epoch(&topo, &faults, &cfg, &mut rng);
        health.absorb(&run.detection);
    }
    assert_eq!(health.current_streak(bad), 0);
    assert!(health.score(bad) < hot_score / 3.0);
    assert_eq!(health.longest_streak(bad), 3, "history preserved");
}
