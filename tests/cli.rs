//! End-to-end tests of the `vigil-sim` CLI front door: preset listing,
//! the JSON config path (`run-config`), and machine-readable reports.

use std::process::Command;
use vigil::prelude::*;

fn vigil_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vigil-sim"))
}

#[test]
fn list_prints_every_preset() {
    let out = vigil_sim().arg("list").output().expect("spawn vigil-sim");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for preset in [
        "single-failure",
        "multi-failure",
        "skewed-traffic",
        "hot-tor",
        "skewed-rates",
        "test-cluster",
        "byzantine-liar",
    ] {
        assert!(text.contains(preset), "missing preset {preset} in:\n{text}");
    }
}

#[test]
fn unknown_inputs_fail_cleanly() {
    let out = vigil_sim()
        .args(["run", "no-such-preset"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = vigil_sim().output().unwrap();
    assert!(!out.status.success());
    let out = vigil_sim()
        .args(["run-config", "/nonexistent/config.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn run_config_round_trips_a_serialized_config() {
    // A tiny-but-real experiment, serialized exactly the way a user would
    // write a config file.
    let cfg = ExperimentConfig {
        name: "cli-round-trip".into(),
        params: ClosParams::tiny(),
        faults: FaultPlan::paper_default(1),
        epochs: 1,
        trials: 1,
        seed: 11,
        ..ExperimentConfig::default()
    };
    let json = serde_json::to_string_pretty(&cfg).unwrap();
    let path = std::env::temp_dir().join(format!("vigil-sim-cli-{}.json", std::process::id()));
    std::fs::write(&path, &json).unwrap();

    let out = vigil_sim()
        .arg("run-config")
        .arg(&path)
        .arg("--json")
        .output()
        .expect("spawn vigil-sim");
    std::fs::remove_file(&path).ok();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "vigil-sim failed: {stderr}");

    let report: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap()).expect("valid JSON report");
    assert_eq!(
        report.get("name").and_then(serde_json::Value::as_str),
        Some("cli-round-trip")
    );
    assert!(report.get("vigil").is_some(), "report missing 007 metrics");
}

#[test]
fn matrix_list_enumerates_the_grid_and_filter_narrows_it() {
    let out = vigil_sim()
        .args(["matrix", "--list"])
        .output()
        .expect("spawn vigil-sim");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let named_lines = text.lines().filter(|l| l.contains("topology=")).count();
    assert!(
        named_lines >= 24,
        "matrix --list shows only {named_lines} scenarios:\n{text}"
    );
    for probe in ["blackhole", "gray", "flap", "maintenance", "slb"] {
        assert!(text.contains(probe), "missing fault axis {probe}:\n{text}");
    }

    let out = vigil_sim()
        .args(["matrix", "--list", "--filter", "blackhole"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let shown = text.lines().filter(|l| l.contains("topology=")).count();
    assert!(shown >= 1 && shown < named_lines, "filter did not narrow");
    assert!(!text.contains("gray/k1"), "filtered case leaked:\n{text}");

    // A filter matching nothing is an error.
    let out = vigil_sim()
        .args(["matrix", "--filter", "no-such-scenario"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn matrix_run_with_filter_reports_conformance_and_is_thread_invariant() {
    let run = |threads: &str| {
        let out = vigil_sim()
            .args([
                "matrix",
                "--filter",
                "drop/k1",
                "--trials",
                "1",
                "--epochs",
                "1",
                "--threads",
                threads,
                "--json",
            ])
            .env("VIGIL_THREADS", "1")
            .env_remove("VIGIL_FAST")
            .output()
            .expect("spawn vigil-sim");
        assert!(
            out.status.success(),
            "matrix --threads {threads} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let one = run("1");
    let four = run("4");
    // The banner names the worker count; everything from the JSON on must
    // be byte-identical.
    let json_of = |s: &str| {
        let start = s.find('{').expect("json in stdout");
        let end = s.rfind('}').expect("json in stdout");
        s[start..=end].to_string()
    };
    assert_eq!(
        json_of(&one),
        json_of(&four),
        "thread count changed the matrix JSON"
    );

    // The JSON verdict is machine-readable and case-complete.
    let report: serde_json::Value = serde_json::from_str(&json_of(&one)).unwrap();
    let cases = report
        .get("cases")
        .and_then(serde_json::Value::as_seq)
        .expect("cases array");
    assert!(!cases.is_empty());
    for case in cases {
        assert_eq!(
            case.get("pass").and_then(serde_json::Value::as_bool),
            Some(true),
            "case failed conformance: {case:?}"
        );
    }
}

#[test]
fn byzantine_matrix_gates_and_forced_violation_fails() {
    // The committed byzantine grid conforms (exit 0) at the calibrated
    // smoke scale; forcing every byzantine case to 90 % compromised
    // hosts must break at least one tolerance envelope (exit 1).
    let run = |extra: &[&str]| {
        let mut args = vec![
            "matrix",
            "--filter",
            "byzantine",
            "--trials",
            "2",
            "--epochs",
            "1",
            "--threads",
            "2",
            "--json",
        ];
        args.extend_from_slice(extra);
        vigil_sim().args(&args).output().expect("spawn vigil-sim")
    };

    let committed = run(&[]);
    assert!(
        committed.status.success(),
        "committed byzantine grid violated its envelopes: {}",
        String::from_utf8_lossy(&committed.stdout)
    );
    let text = String::from_utf8(committed.stdout).unwrap();
    let report: serde_json::Value = {
        let start = text.find('{').expect("json in stdout");
        let end = text.rfind('}').expect("json in stdout");
        serde_json::from_str(&text[start..=end]).unwrap()
    };
    let points = report
        .get("breaking_points")
        .and_then(serde_json::Value::as_seq)
        .expect("byzantine report carries breaking_points");
    assert!(points.len() >= 4, "one fold entry per behavior: {points:?}");

    let forced = run(&["--byzantine-fraction", "0.9"]);
    assert!(
        !forced.status.success(),
        "90 % compromised hosts passed the tolerance envelopes:\n{}",
        String::from_utf8_lossy(&forced.stdout)
    );

    // The override is an adversary knob, not an honest-case knob: it
    // refuses filters with no byzantine case to act on.
    let misapplied = vigil_sim()
        .args([
            "matrix",
            "--filter",
            "drop/k1",
            "--byzantine-fraction",
            "0.5",
        ])
        .output()
        .unwrap();
    assert!(!misapplied.status.success());
}

#[test]
fn byzantine_stream_json_equals_batch_run() {
    // The adversarial preset rides the same per-flow hook in both entry
    // points: `stream --json` must be byte-identical to `run --json`.
    let run = |cmd: &str| {
        let out = vigil_sim()
            .args([
                cmd,
                "byzantine-liar",
                "--trials",
                "1",
                "--epochs",
                "2",
                "--threads",
                "2",
                "--json",
            ])
            .output()
            .expect("spawn vigil-sim");
        assert!(
            out.status.success(),
            "vigil-sim {cmd} byzantine-liar failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(
        run("run"),
        run("stream"),
        "adversarial stream diverged from the batch path"
    );
}

#[test]
fn stream_json_equals_batch_run_and_is_thread_invariant() {
    // The streaming determinism contract, end to end through the front
    // door: `stream --epochs 3 --json` is byte-identical to the batch
    // `run` path on the same preset, and to itself at --threads 1 vs 4.
    let run = |cmd: &str, threads: &str| {
        let out = vigil_sim()
            .args([
                cmd,
                "single-failure",
                "--trials",
                "2",
                "--epochs",
                "3",
                "--threads",
                threads,
                "--json",
            ])
            .output()
            .expect("spawn vigil-sim");
        assert!(
            out.status.success(),
            "vigil-sim {cmd} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let batch = run("run", "1");
    let stream = run("stream", "1");
    assert_eq!(batch, stream, "stream JSON diverged from the batch path");
    let stream4 = run("stream", "4");
    assert_eq!(stream, stream4, "thread count changed the stream JSON");

    // The service-mode accounting lands on stderr, not in the JSON.
    let out = vigil_sim()
        .args([
            "stream",
            "single-failure",
            "--trials",
            "1",
            "--epochs",
            "1",
            "--threads",
            "1",
            "--json",
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        stderr.contains("peak resident") && stderr.contains("shed"),
        "stream stats missing from stderr: {stderr}"
    );
}

#[test]
fn stream_forever_caps_at_explicit_epochs_and_prints_windows() {
    let out = vigil_sim()
        .args([
            "stream",
            "single-failure",
            "--forever",
            "--epochs",
            "2",
            "--window-ms",
            "30000",
        ])
        .output()
        .expect("spawn vigil-sim");
    assert!(
        out.status.success(),
        "stream --forever failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let windows = text.lines().filter(|l| l.starts_with("window")).count();
    assert_eq!(windows, 2, "expected 2 window lines:\n{text}");
    assert!(text.contains("heat map"), "missing heat map:\n{text}");

    // Unknown presets and bad window lengths fail cleanly.
    let bad = vigil_sim()
        .args(["stream", "no-such-preset"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    let bad = vigil_sim()
        .args(["stream", "--window-ms", "zero"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
}

#[test]
fn zero_valued_counts_are_rejected_not_vacuous() {
    // A zero window, trial, or epoch count must fail loudly — not
    // "succeed" with an empty report (or divide the pacer budget by a
    // zero-length window).
    for args in [
        ["stream", "--window-ms", "0"],
        ["stream", "--trials", "0"],
        ["stream", "--epochs", "0"],
        ["run", "single-failure", "--trials"], // missing value
    ] {
        let out = vigil_sim().args(args).output().unwrap();
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(out.stdout.is_empty(), "{args:?} must not print a report");
    }
    for (sub, flag) in [("run", "--trials"), ("run", "--epochs")] {
        let out = vigil_sim()
            .args([sub, "single-failure", flag, "0"])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{sub} {flag} 0 must fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("positive integer"),
            "{sub} {flag} 0: unexpected stderr:\n{err}"
        );
    }
}

#[test]
fn collect_resume_without_snapshot_is_rejected_at_parse() {
    // `--resume` restores collector state from the snapshot file; with
    // no `--snapshot` there is nothing to resume from. That must be an
    // argument error with a clear message — not a daemon that binds a
    // socket and then dies (or silently starts from scratch).
    let out = vigil_sim()
        .args(["collect", "--agents", "1", "--resume"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "collect --resume alone must fail");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--resume needs --snapshot"),
        "expected a clear arg-parse message, got:\n{err}"
    );
    assert!(
        !err.contains("listening on"),
        "must be rejected before binding the listener:\n{err}"
    );

    // The valid combination still parses (bad path → later I/O error is
    // fine, but not the arg-parse message).
    let out = vigil_sim()
        .args([
            "collect",
            "--agents",
            "1",
            "--resume",
            "--snapshot",
            "/nonexistent/dir/snap.json",
        ])
        .output()
        .unwrap();
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        !err.contains("--resume needs --snapshot"),
        "--resume with --snapshot must pass arg parsing:\n{err}"
    );
}

#[test]
fn threads_flag_is_accepted_and_output_is_thread_invariant() {
    // `--threads N` routes through the sweep engine; the JSON report must
    // be byte-identical at any width.
    let run = |threads: &str| {
        let out = vigil_sim()
            .args([
                "run",
                "single-failure",
                "--trials",
                "3",
                "--epochs",
                "1",
                "--threads",
                threads,
                "--json",
            ])
            // The flag must win over any ambient env setting.
            .env("VIGIL_THREADS", "1")
            .output()
            .expect("spawn vigil-sim");
        assert!(
            out.status.success(),
            "vigil-sim --threads {threads} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let one = run("1");
    let four = run("4");
    assert_eq!(one, four, "thread count changed the report JSON");

    let bad = vigil_sim()
        .args(["run", "single-failure", "--threads", "zero"])
        .output()
        .unwrap();
    assert!(!bad.status.success(), "non-numeric --threads must fail");
}
