//! Byzantine-voter conformance: the adversarial axis of the scenario
//! matrix. Every `byzantine/*` case must land inside its fraction-
//! calibrated tolerance envelope, and the measured breaking points must
//! tell the democratic story the floors encode: the tally absorbs liars
//! up to (not through) the one-third boundary, mutes only thin evidence,
//! flooders and flippers poison precision early.

use vigil::matrix::{filter_cases, Envelope, MatrixRunner, ScenarioCase};
use vigil::prelude::*;
use vigil_agents::ByzantineSpec;
use vigil_fabric::faults::RateRange;
use vigil_fabric::{CompositeFaultPlan, FaultKind};
use vigil_topology::ClosParams;

fn smoke_runner(threads: usize) -> MatrixRunner {
    let mut runner = MatrixRunner::new(SweepEngine::new(threads));
    runner.trials = 2;
    runner.epochs = 1;
    runner
}

#[test]
fn byzantine_grid_conforms_and_reports_breaking_points() {
    let cases = filter_cases(scenarios::standard_matrix(), "byzantine");
    assert!(
        cases.len() >= 10,
        "byzantine axis shrank to {} cases",
        cases.len()
    );
    let report = smoke_runner(2).run(&cases);
    for case in report.failures() {
        panic!(
            "{} violated its tolerance envelope: {:?}",
            case.name, case.violations
        );
    }

    let point = |behavior: &str| {
        report
            .breaking_points
            .iter()
            .find(|p| p.behavior == behavior)
            .unwrap_or_else(|| panic!("no breaking point for {behavior}"))
    };
    // Liars: tolerated up to the measured boundary, which must sit at or
    // above the 20 % fraction (the grid breaks them at one third).
    let liar = point("byz-liar");
    assert!(
        liar.breaking_fraction.is_none_or(|f| f >= 0.2),
        "liar breaking point fell below 20 %: {liar:?}"
    );
    assert!(
        liar.tolerated_fraction.is_some_and(|f| f >= 0.2),
        "liars at 20 % must stay inside the honest envelope: {liar:?}"
    );
    // Mutes only remove evidence — no tested fraction breaks the tally.
    let mute = point("byz-mute");
    assert!(
        mute.breaking_fraction.is_none(),
        "mute hosts corrupted the tally: {mute:?}"
    );
    assert_eq!(mute.max_tested_fraction, 0.5);
    // Flooders and flippers poison precision early: both must report a
    // measured breaking point within the tested sweep.
    assert!(point("byz-flood").breaking_fraction.is_some());
    assert!(point("byz-flip").breaking_fraction.is_some());
}

#[test]
fn honest_cases_carry_no_byzantine_plumbing() {
    // Fraction 0 everywhere outside `byzantine/*`: the axis is a true
    // no-op on every pre-existing case (no label, no honest twin).
    for case in scenarios::standard_matrix() {
        let byz = case.name.starts_with("byzantine/");
        assert_eq!(case.run.byzantine.enabled(), byz, "{}", case.name);
        assert_eq!(case.honest_envelope.is_some(), byz, "{}", case.name);
        assert_eq!(
            case.fault_labels().iter().any(|l| l.starts_with("byz-")),
            byz,
            "{}",
            case.name
        );
    }
}

#[test]
fn liar_breaking_point_on_paper_topology_is_at_least_20_percent() {
    // The acceptance claim on the paper's own §6 fabric (800 hosts): the
    // democratic tally holds the honest-voter envelope with up to 20 % of
    // hosts lying about their paths.
    let params = ClosParams::paper_sim();
    let traffic = vigil_fabric::traffic::TrafficSpec {
        conns_per_host: vigil_fabric::traffic::ConnCount::Fixed(40),
        ..vigil_fabric::traffic::TrafficSpec::paper_default()
    };
    let honest = Envelope::from_bounds(
        &params,
        2,
        1e-4,
        RateRange::PAPER_NOISE.hi,
        traffic.packets_per_flow.bounds(),
    )
    // Ground-truth noise marks are adversary-corrupted (see the
    // byzantine-case builder's derivation note) — excluded here too.
    .with_max_incorrect_noise(1.0);
    assert_eq!(
        honest.min_accuracy,
        Some(0.75),
        "paper topology must be in the Theorem-2 regime for the claim to mean anything"
    );

    let cases: Vec<ScenarioCase> = [0.05, 0.10, 0.20]
        .into_iter()
        .map(|fraction| {
            let mut run = scenarios::paper_run_config();
            run.traffic = traffic.clone();
            run.baselines.integer = false;
            let mut c = ScenarioCase {
                name: format!("paper/liar-{:02}", (fraction * 100.0) as u32),
                topology: "paper-sim",
                traffic: "uniform",
                params,
                faults: CompositeFaultPlan::new(vec![FaultKind::RandomDrop {
                    failures: 2,
                    rate: RateRange::PAPER_FAILURE,
                }]),
                run,
                envelope: honest,
                honest_envelope: Some(honest),
            };
            c.run.byzantine = ByzantineSpec {
                salt: c.seed(0x0007_BAD5_0007_BAD5),
                ..ByzantineSpec::liars(fraction)
            };
            c
        })
        .collect();

    let report = smoke_runner(2).run(&cases);
    let liar = report
        .breaking_points
        .iter()
        .find(|p| p.behavior == "byz-liar")
        .expect("liar cases ran");
    assert!(
        liar.breaking_fraction.is_none_or(|f| f >= 0.2),
        "liar breaking point below 20 % on the paper topology: {liar:?} \
         (cases: {:?})",
        report
            .cases
            .iter()
            .map(|c| (c.name.clone(), c.violations.clone()))
            .collect::<Vec<_>>()
    );
    assert!(liar.tolerated_fraction.is_some_and(|f| f >= 0.1));
}
