//! Process-level checks of the distributed service mode: the real
//! `vigil-sim collect` / `vigil-sim agent` binaries, talking over
//! loopback TCP, must reproduce `vigil-sim stream --json --trials 1`
//! byte for byte — including across a collector kill/restore cycle.
//!
//! The in-module tests in `vigil::distributed` already exercise the
//! library API over real sockets; these tests cover the CLI surface:
//! flag parsing, `--addr-file` discovery of an ephemeral port, the
//! metrics endpoint, and snapshot/resume through real process exits.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn vigil_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vigil-sim"))
}

/// A per-test scratch directory keyed by pid so parallel test binaries
/// never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vigil-dist-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Polls an `--addr-file` until the collector has written the bound
/// address into it (port 0 means we can't know it in advance).
fn wait_for_addr(path: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                return s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The `single-failure` preset fabric has 800 hosts; each agent serves
/// half of them.
const HOST_SPLITS: [&str; 2] = ["0..400", "400..800"];

fn spawn_agent(addr: &str, hosts: &str, start_epoch: usize, epochs: usize) -> Child {
    vigil_sim()
        .args([
            "agent",
            "--collector",
            addr,
            "--hosts",
            hosts,
            "--start-epoch",
            &start_epoch.to_string(),
            "--epochs",
            &epochs.to_string(),
            "--seed",
            "7",
        ])
        .stderr(Stdio::null())
        .spawn()
        .unwrap()
}

fn reap_agents(agents: Vec<Child>) {
    for mut agent in agents {
        assert!(agent.wait().unwrap().success(), "agent process failed");
    }
}

fn stream_reference(epochs: &str) -> Vec<u8> {
    let out = vigil_sim()
        .args([
            "stream", "--json", "--trials", "1", "--epochs", epochs, "--seed", "7",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    out.stdout
}

#[test]
fn collect_binary_matches_stream_binary() {
    let dir = scratch("loopback");
    let addr_file = dir.join("addr");
    let metrics_file = dir.join("metrics-addr");
    let collector = vigil_sim()
        .args([
            "collect",
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--metrics",
            "127.0.0.1:0",
            "--metrics-addr-file",
            metrics_file.to_str().unwrap(),
            "--agents",
            "2",
            "--epochs",
            "2",
            "--seed",
            "7",
            "--json",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_for_addr(&addr_file);

    // The metrics endpoint is live before any agent is admitted; it
    // must already answer valid JSON (all-zero totals at this point).
    let metrics_addr = wait_for_addr(&metrics_file);
    let mut sock = TcpStream::connect(&metrics_addr).unwrap();
    sock.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
    let mut resp = String::new();
    sock.read_to_string(&mut resp).unwrap();
    assert!(resp.contains("\"windows\""), "metrics response:\n{resp}");

    let agents = HOST_SPLITS
        .iter()
        .map(|hosts| spawn_agent(&addr, hosts, 0, 2))
        .collect();
    reap_agents(agents);
    let out = collector.wait_with_output().unwrap();
    assert!(out.status.success());

    assert_eq!(
        out.stdout,
        stream_reference("2"),
        "distributed report must be byte-identical to the in-process stream"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn collector_failover_resumes_to_identical_report() {
    let dir = scratch("failover");
    let snapshot = dir.join("snap.json");

    // Phase 1: serve two of three windows, snapshot each, then pause.
    let addr_file = dir.join("addr1");
    let collector = vigil_sim()
        .args([
            "collect",
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--agents",
            "2",
            "--epochs",
            "3",
            "--seed",
            "7",
            "--json",
            "--snapshot",
            snapshot.to_str().unwrap(),
            "--exit-after",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_for_addr(&addr_file);
    let agents = HOST_SPLITS
        .iter()
        .map(|hosts| spawn_agent(&addr, hosts, 0, 2))
        .collect();
    reap_agents(agents);
    let paused = collector.wait_with_output().unwrap();
    assert!(paused.status.success());
    assert!(
        paused.stdout.is_empty(),
        "a paused collector emits no report"
    );
    assert!(
        snapshot.exists(),
        "snapshot must be on disk after the pause"
    );

    // Phase 2: a fresh collector process restores the ledger from the
    // snapshot and serves only the remaining window.
    let addr_file = dir.join("addr2");
    let collector = vigil_sim()
        .args([
            "collect",
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--agents",
            "2",
            "--epochs",
            "3",
            "--seed",
            "7",
            "--json",
            "--snapshot",
            snapshot.to_str().unwrap(),
            "--resume",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_for_addr(&addr_file);
    let agents = HOST_SPLITS
        .iter()
        .map(|hosts| spawn_agent(&addr, hosts, 2, 1))
        .collect();
    reap_agents(agents);
    let out = collector.wait_with_output().unwrap();
    assert!(out.status.success());

    assert_eq!(
        out.stdout,
        stream_reference("3"),
        "resumed report must match an uninterrupted three-epoch stream"
    );
    std::fs::remove_dir_all(&dir).ok();
}
