//! Process-level checks of the distributed service mode: the real
//! `vigil-sim collect` / `vigil-sim agent` binaries, talking over
//! loopback TCP or a Unix socket, must reproduce
//! `vigil-sim stream --json --trials 1` byte for byte — including
//! across a collector kill/restore cycle and under seeded wire chaos.
//!
//! The in-module tests in `vigil::distributed` already exercise the
//! library API over real sockets; these tests cover the CLI surface:
//! flag parsing, `--addr-file` discovery of an ephemeral port, the
//! metrics endpoint, snapshot/resume through real process exits, and
//! the `--resilient`/`--chaos` self-healing path.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn vigil_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vigil-sim"))
}

/// A per-test scratch directory keyed by pid so parallel test binaries
/// never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vigil-dist-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Polls an `--addr-file` until the collector has written the bound
/// address into it (port 0 means we can't know it in advance).
fn wait_for_addr(path: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                return s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The `single-failure` preset fabric has 800 hosts; each agent serves
/// half of them.
const HOST_SPLITS: [&str; 2] = ["0..400", "400..800"];

fn spawn_agent(addr: &str, hosts: &str, start_epoch: usize, epochs: usize) -> Child {
    vigil_sim()
        .args([
            "agent",
            "--collector",
            addr,
            "--hosts",
            hosts,
            "--start-epoch",
            &start_epoch.to_string(),
            "--epochs",
            &epochs.to_string(),
            "--seed",
            "7",
        ])
        .stderr(Stdio::null())
        .spawn()
        .unwrap()
}

fn reap_agents(agents: Vec<Child>) {
    for mut agent in agents {
        assert!(agent.wait().unwrap().success(), "agent process failed");
    }
}

fn stream_reference(epochs: &str) -> Vec<u8> {
    let out = vigil_sim()
        .args([
            "stream", "--json", "--trials", "1", "--epochs", epochs, "--seed", "7",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    out.stdout
}

#[test]
fn collect_binary_matches_stream_binary() {
    let dir = scratch("loopback");
    let addr_file = dir.join("addr");
    let metrics_file = dir.join("metrics-addr");
    let collector = vigil_sim()
        .args([
            "collect",
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--metrics",
            "127.0.0.1:0",
            "--metrics-addr-file",
            metrics_file.to_str().unwrap(),
            "--agents",
            "2",
            "--epochs",
            "2",
            "--seed",
            "7",
            "--json",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_for_addr(&addr_file);

    // The metrics endpoint is live before any agent is admitted; it
    // must already answer valid JSON (all-zero totals at this point).
    let metrics_addr = wait_for_addr(&metrics_file);
    let mut sock = TcpStream::connect(&metrics_addr).unwrap();
    sock.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
    let mut resp = String::new();
    sock.read_to_string(&mut resp).unwrap();
    assert!(resp.contains("\"windows\""), "metrics response:\n{resp}");

    let agents = HOST_SPLITS
        .iter()
        .map(|hosts| spawn_agent(&addr, hosts, 0, 2))
        .collect();
    reap_agents(agents);
    let out = collector.wait_with_output().unwrap();
    assert!(out.status.success());

    assert_eq!(
        out.stdout,
        stream_reference("2"),
        "distributed report must be byte-identical to the in-process stream"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn collector_failover_resumes_to_identical_report() {
    let dir = scratch("failover");
    let snapshot = dir.join("snap.json");

    // Phase 1: serve two of three windows, snapshot each, then pause.
    let addr_file = dir.join("addr1");
    let collector = vigil_sim()
        .args([
            "collect",
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--agents",
            "2",
            "--epochs",
            "3",
            "--seed",
            "7",
            "--json",
            "--snapshot",
            snapshot.to_str().unwrap(),
            "--exit-after",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_for_addr(&addr_file);
    let agents = HOST_SPLITS
        .iter()
        .map(|hosts| spawn_agent(&addr, hosts, 0, 2))
        .collect();
    reap_agents(agents);
    let paused = collector.wait_with_output().unwrap();
    assert!(paused.status.success());
    assert!(
        paused.stdout.is_empty(),
        "a paused collector emits no report"
    );
    assert!(
        snapshot.exists(),
        "snapshot must be on disk after the pause"
    );

    // Phase 2: a fresh collector process restores the ledger from the
    // snapshot and serves only the remaining window.
    let addr_file = dir.join("addr2");
    let collector = vigil_sim()
        .args([
            "collect",
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--agents",
            "2",
            "--epochs",
            "3",
            "--seed",
            "7",
            "--json",
            "--snapshot",
            snapshot.to_str().unwrap(),
            "--resume",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_for_addr(&addr_file);
    let agents = HOST_SPLITS
        .iter()
        .map(|hosts| spawn_agent(&addr, hosts, 2, 1))
        .collect();
    reap_agents(agents);
    let out = collector.wait_with_output().unwrap();
    assert!(out.status.success());

    assert_eq!(
        out.stdout,
        stream_reference("3"),
        "resumed report must match an uninterrupted three-epoch stream"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A resilient agent under seeded wire chaos, spawned once for the whole
/// run — it must survive injected faults *and* a collector swap.
fn spawn_chaos_agent(addr: &str, hosts: &str, epochs: usize, chaos: &str) -> Child {
    vigil_sim()
        .args([
            "agent",
            "--collector",
            addr,
            "--hosts",
            hosts,
            "--epochs",
            &epochs.to_string(),
            "--seed",
            "7",
            "--resilient",
            "--chaos",
            chaos,
            "--backoff-ms",
            "10",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .unwrap()
}

#[test]
fn chaos_fleet_with_collector_failover_stays_byte_identical() {
    // The full robustness story over real processes: frame corruption,
    // duplication, injected connection resets escalating into short
    // partitions — plus a collector kill + `--resume` mid-chaos, over a
    // Unix socket whose path survives the swap. The self-healing
    // protocol (reconnect, resume-from-ack, replay, dedup) must make
    // all of it invisible in the final tally.
    let dir = scratch("chaos");
    let sock = dir.join("collector.sock");
    let addr = sock.to_str().unwrap().to_string();
    let snapshot = dir.join("snap.json");
    // One chaos reset roughly every 200 frames: an agent emits ~80
    // frames per epoch here, so full epochs always fit between resets
    // (the loss-recoverable regime); every reset has a 50% chance of
    // escalating into a 2-attempt partition.
    let chaos = "seed=11,corrupt=0.02,dup=0.01,reset_every=200,partition=0.5:2";

    // Phase 1: serve two of three windows, then pause (the "kill").
    let collector = vigil_sim()
        .args([
            "collect",
            "--listen",
            &addr,
            "--agents",
            "2",
            "--epochs",
            "3",
            "--seed",
            "7",
            "--snapshot",
            snapshot.to_str().unwrap(),
            "--exit-after",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Unix socket: the path is known up front; resilient agents retry
    // until the collector answers, so no addr-file dance is needed.
    let agents: Vec<Child> = HOST_SPLITS
        .iter()
        .map(|hosts| spawn_chaos_agent(&addr, hosts, 3, chaos))
        .collect();
    let paused = collector.wait_with_output().unwrap();
    assert!(paused.status.success(), "phase-1 collector failed");
    assert!(snapshot.exists(), "snapshot must survive the kill");

    // Phase 2: a successor resumes on the SAME socket path. The agents
    // from phase 1 are still running — they reconnect, replay their
    // unacked epoch, and finish the run against the successor.
    let collector = vigil_sim()
        .args([
            "collect",
            "--listen",
            &addr,
            "--agents",
            "2",
            "--epochs",
            "3",
            "--seed",
            "7",
            "--json",
            "--snapshot",
            snapshot.to_str().unwrap(),
            "--resume",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    let mut reconnects_total = 0u64;
    for agent in agents {
        let out = agent.wait_with_output().unwrap();
        assert!(out.status.success(), "chaos agent failed");
        // "agent: hosts LO..HI: ... N reconnect(s)" — the agent's own
        // count of healed failures.
        let err = String::from_utf8(out.stderr).unwrap();
        let count = err
            .lines()
            .filter_map(|l| l.split_whitespace().rev().nth(1)?.parse::<u64>().ok())
            .last()
            .unwrap_or(0);
        reconnects_total += count;
    }
    let out = collector.wait_with_output().unwrap();
    assert!(out.status.success(), "phase-2 collector failed");

    assert!(
        reconnects_total > 0,
        "chaos must have forced at least one reconnect, or it tested nothing"
    );
    assert_eq!(
        out.stdout,
        stream_reference("3"),
        "chaos + failover must be invisible in the final tally"
    );
    std::fs::remove_dir_all(&dir).ok();
}
