//! Integration tests for the §9.1 routing-instability story: ECMP seeds
//! change on switch reboot, BGP withdrawals move flows, and the §4.2
//! retransmit→trace race is only dangerous when routing changes in the
//! window between them.

use vigil::prelude::*;
use vigil_agents::{ProbeTracer, Tracer};
use vigil_fabric::faults::LinkFaults;
use vigil_fabric::netsim::{NetSim, NetSimConfig};
use vigil_packet::FiveTuple;
use vigil_topology::HostId;

fn cross_pod(sim: &NetSim) -> (HostId, HostId, FiveTuple) {
    let src = HostId(0);
    let dst = HostId(sim.topo().num_hosts() as u32 - 1);
    let tuple = FiveTuple::tcp(
        sim.topo().host_ip(src),
        52_000,
        sim.topo().host_ip(dst),
        443,
    );
    (src, dst, tuple)
}

#[test]
fn switch_reboot_reseeds_and_moves_some_flows() {
    let topo = ClosTopology::new(ClosParams::tiny(), 400).unwrap();
    let faults = LinkFaults::new(topo.num_links());
    let mut sim = NetSim::new(topo, faults, NetSimConfig::default(), 40);
    let (src, dst, _) = cross_pod(&sim);

    // Record paths for a sheaf of flows, "reboot" the source ToR (new
    // ECMP seed), and count how many moved: some must, some must not —
    // the hash still spreads.
    let tuples: Vec<FiveTuple> = (0..32u16)
        .map(|i| {
            FiveTuple::tcp(
                sim.topo().host_ip(src),
                53_000 + i,
                sim.topo().host_ip(dst),
                443,
            )
        })
        .collect();
    let before: Vec<_> = tuples
        .iter()
        .map(|t| sim.data_path(t, src, dst).unwrap())
        .collect();
    let tor = sim.topo().host_tor(src);
    sim.topo_mut().reseed_switch(tor, 0xBEEF);
    let after: Vec<_> = tuples
        .iter()
        .map(|t| sim.data_path(t, src, dst).unwrap())
        .collect();
    let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count();
    assert!(moved > 0, "a reseed must move some flows");
    assert!(moved < tuples.len(), "a reseed must not move every flow");
}

#[test]
fn trace_before_reroute_matches_data_path() {
    // The paper's argument: TCP retransmits within ~ms and the trace
    // fires immediately, so the probe path equals the data path as long
    // as routing is stable over that window. Stable fabric ⇒ always
    // matches (also asserted in §8.2's harness); this test pins the
    // negative: withdraw a link *before* the trace and the recorded path
    // must differ from the stale data path, which the §8.2 validation
    // would flag.
    let topo = ClosTopology::new(ClosParams::tiny(), 401).unwrap();
    let faults = LinkFaults::new(topo.num_links());
    let mut sim = NetSim::new(topo, faults, NetSimConfig::default(), 41);
    let (src, dst, tuple) = cross_pod(&sim);

    let data_path_at_drop_time = sim.data_path(&tuple, src, dst).unwrap();

    // Fast trace (no routing change): exact match.
    let traced = ProbeTracer::new(&mut sim).trace(src, &tuple).unwrap();
    assert_eq!(traced.links, data_path_at_drop_time.links);

    // Slow trace after a BGP withdrawal on the flow's uplink choice.
    sim.faults_mut()
        .set_admin_down(data_path_at_drop_time.links[1], true);
    let traced_late = ProbeTracer::new(&mut sim).trace(src, &tuple).unwrap();
    assert_ne!(
        traced_late.links, data_path_at_drop_time.links,
        "a reroute between drop and trace must be observable"
    );
    // The late trace is still a *valid current* path — 007's votes then
    // land on live links, the failure mode the paper accepts as rare.
    let current = sim.data_path(&tuple, src, dst).unwrap();
    assert_eq!(traced_late.links, current.links);
}

#[test]
fn withdrawal_and_restore_round_trip() {
    let topo = ClosTopology::new(ClosParams::tiny(), 402).unwrap();
    let faults = LinkFaults::new(topo.num_links());
    let mut sim = NetSim::new(topo, faults, NetSimConfig::default(), 42);
    let (src, dst, tuple) = cross_pod(&sim);

    let original = sim.data_path(&tuple, src, dst).unwrap();
    let withdrawn = original.links[1];
    sim.faults_mut().set_admin_down(withdrawn, true);
    assert_ne!(sim.data_path(&tuple, src, dst).unwrap(), original);
    sim.faults_mut().set_admin_down(withdrawn, false);
    assert_eq!(
        sim.data_path(&tuple, src, dst).unwrap(),
        original,
        "restoring the link restores the deterministic ECMP choice"
    );
}
