//! Integration tests for time-varying faults (flaps, maintenance) and the
//! SLB-gated path discovery over VIP traffic.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vigil::prelude::*;
use vigil_agents::{HostAgent, HostPacer, OracleTracer, SlbGate, TcpMonitor};
use vigil_fabric::dynamics::FaultTimeline;
use vigil_fabric::flowsim::simulate_flows;
use vigil_fabric::slb::{Slb, VipPool};
use vigil_fabric::traffic::FlowSpec;
use vigil_topology::{HostId, LinkKind};

#[test]
fn flapping_link_detected_only_while_flapping() {
    let topo = ClosTopology::new(ClosParams::tiny(), 300).unwrap();
    let flappy = topo
        .links()
        .iter()
        .find(|l| l.kind == LinkKind::TorToT1)
        .unwrap()
        .id;

    // Epochs 1 and 2 contain flaps; epochs 0 and 3 are quiet.
    // Cycles: 35–38, 45–48, 55–58 (epoch 1) and 65–68, 75–78, 85–88
    // (epoch 2).
    let mut timeline = FaultTimeline::new();
    timeline.add_flap(flappy, 35.0, 6, 3.0, 7.0);
    let cfg = RunConfig {
        traffic: TrafficSpec {
            conns_per_host: ConnCount::Fixed(25),
            ..TrafficSpec::paper_default()
        },
        baselines: Baselines {
            integer: false,
            binary: false,
            ..Baselines::default()
        },
        ..RunConfig::default()
    };

    let mut rng = ChaCha8Rng::seed_from_u64(300);
    let mut detected_by_epoch = Vec::new();
    for epoch in 0..4 {
        let from = epoch as f64 * 30.0;
        let faults = timeline.materialize(
            topo.num_links(),
            RateRange::PAPER_NOISE,
            from,
            from + 30.0,
            &mut rng,
        );
        let run = vigil::run_epoch(&topo, &faults, &cfg, &mut rng);
        detected_by_epoch.push(run.detection.detected_links().contains(&flappy));
    }
    assert!(
        !detected_by_epoch[0],
        "no detection before the flapping starts"
    );
    assert!(detected_by_epoch[1], "flap inside epoch 1 must be detected");
    assert!(detected_by_epoch[2], "flap inside epoch 2 must be detected");
    assert!(!detected_by_epoch[3], "flapping over: link clean again");
}

#[test]
fn maintenance_window_reroutes_without_drop_storm() {
    let topo = ClosTopology::new(ClosParams::tiny(), 301).unwrap();
    let link = topo
        .links()
        .iter()
        .find(|l| l.kind == LinkKind::TorToT1)
        .unwrap()
        .id;
    let mut timeline = FaultTimeline::new();
    // A 30 s window exactly covering epoch 1, 1 s convergence bursts.
    timeline.add_maintenance(link, 30.0, 30.0, 1.0, 0.2);

    let mut rng = ChaCha8Rng::seed_from_u64(301);
    let faults = timeline.materialize(
        topo.num_links(),
        RateRange::PAPER_NOISE,
        30.0,
        60.0,
        &mut rng,
    );
    // Mid-window the link is withdrawn: flows route around it.
    assert!(faults.is_down(link));
    let cfg = RunConfig {
        traffic: TrafficSpec {
            conns_per_host: ConnCount::Fixed(20),
            ..TrafficSpec::paper_default()
        },
        baselines: Baselines {
            integer: false,
            binary: false,
            ..Baselines::default()
        },
        ..RunConfig::default()
    };
    let run = vigil::run_epoch(&topo, &faults, &cfg, &mut rng);
    assert!(
        run.outcome
            .flows
            .iter()
            .all(|f| !f.path.contains_link(link)),
        "withdrawn link must carry no flows"
    );
}

#[test]
fn vip_traffic_traced_through_slb_gate() {
    let topo = ClosTopology::new(ClosParams::tiny(), 302).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(302);

    // Storage VIP backed by pod-1 hosts.
    let vip = "10.255.0.1".parse().unwrap();
    let backends: Vec<_> = topo
        .hosts()
        .filter(|h| topo.host_pod(*h) == 1)
        .take(4)
        .map(|h| (h, topo.host_ip(h), 8443))
        .collect();
    let mut slb = Slb::new();
    slb.add_pool(VipPool {
        vip,
        vip_port: 443,
        backends,
    });

    // Pod-0 clients connect to the VIP; the SLB assigns DIPs; the wire
    // carries DIP flows.
    let mut specs = Vec::new();
    let mut vip_of: std::collections::HashMap<_, _> = Default::default();
    for host in topo.hosts().filter(|h| topo.host_pod(*h) == 0).take(8) {
        for i in 0..4u16 {
            let vip_flow = vigil_packet::FiveTuple::tcp(topo.host_ip(host), 45_000 + i, vip, 443);
            let a = slb.establish(host, vip_flow, &mut rng).unwrap();
            let dip_flow = vip_flow.with_destination(a.dip, a.port);
            vip_of.insert(dip_flow, vip_flow);
            specs.push(FlowSpec {
                src: host,
                dst: a.host,
                tuple: dip_flow,
                packets: 60,
            });
        }
    }

    // A lossy link on the way to pod 1: fail the T1→T2 link that carries
    // the most of our mounts, so several flows witness it.
    let mut usage: std::collections::HashMap<vigil_topology::LinkId, u32> = Default::default();
    for s in &specs {
        let path = topo.route(&s.tuple, s.src, s.dst).unwrap();
        for l in &path.links {
            if topo.link(*l).kind == LinkKind::T1ToT2 {
                *usage.entry(*l).or_default() += 1;
            }
        }
    }
    let bad = *usage
        .iter()
        .max_by_key(|(_, c)| **c)
        .expect("cross-pod flows use level-2 links")
        .0;
    let mut faults = vigil_fabric::faults::LinkFaults::new(topo.num_links());
    faults.set_noise(RateRange::PAPER_NOISE, &mut rng);
    faults.fail_link(bad, 0.12);

    let outcome = simulate_flows(&topo, &faults, &specs, &SimConfig::default(), &mut rng);
    let monitor = TcpMonitor::new();
    let mut tracer = OracleTracer::from_flows(&outcome.flows);
    let mut gate = SlbGate::new(&slb, SlbGate::default_vip_classifier);

    // The monitor reports the kernel's view: the VIP tuple (the vSwitch
    // rewrites destinations transparently). Rebuild events accordingly.
    let mut reports = Vec::new();
    for host in topo.hosts() {
        let mut agent = HostAgent::new(host, HostPacer::from_theorem1(&topo, 100.0, 30.0));
        for ev in monitor.events_for_host(host, &outcome.flows) {
            let as_vip = vigil_agents::RetransmissionEvent {
                tuple: vip_of.get(&ev.tuple).copied().unwrap_or(ev.tuple),
                ..ev
            };
            // The gate must resolve the VIP back to the DIP for tracing.
            if let Some(r) = gate.handle_event(&mut agent, &as_vip, &mut tracer, &mut rng) {
                reports.push(r);
            }
        }
    }
    assert!(!reports.is_empty(), "lossy link must trigger gated traces");
    assert!(gate.stats().resolved >= reports.len() as u64);
    assert_eq!(gate.stats().skipped_unknown, 0);
    // Reports carry the VIP tuple (what the monitor saw) but DIP paths.
    for r in &reports {
        assert_eq!(r.tuple.dst_ip, vip, "reports key by the monitor's tuple");
        assert!(!r.links.is_empty());
    }

    // And the votes still localize the failure.
    let evidence: Vec<vigil_analysis::FlowEvidence> = reports
        .iter()
        .map(|r| vigil_analysis::FlowEvidence::new(r.links.clone(), r.retransmissions))
        .collect();
    let tally = vigil_analysis::VoteTally::tally(
        &evidence,
        topo.num_links(),
        vigil_analysis::VoteWeight::ReciprocalPathLength,
    );
    assert_eq!(
        tally.ranking()[0].0,
        bad,
        "votes must rank the lossy link first"
    );
}

#[test]
fn snat_flows_never_trace() {
    let topo = ClosTopology::new(ClosParams::tiny(), 303).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(303);
    let vip = "10.255.0.9".parse().unwrap();
    let backend = topo.hosts().last().unwrap();
    let mut slb = Slb::new();
    slb.add_pool(VipPool {
        vip,
        vip_port: 443,
        backends: vec![(backend, topo.host_ip(backend), 8443)],
    });
    let host = HostId(0);
    let flow = vigil_packet::FiveTuple::tcp(topo.host_ip(host), 46_000, vip, 443);
    let _ = slb.establish(host, flow, &mut rng).unwrap();
    slb.mark_snat(flow);

    let mut gate = SlbGate::new(&slb, SlbGate::default_vip_classifier);
    let mut agent = HostAgent::new(host, HostPacer::with_budget(5));
    let mut tracer = OracleTracer::default();
    let event = vigil_agents::RetransmissionEvent {
        host,
        tuple: flow,
        retransmissions: 3,
    };
    assert!(gate
        .handle_event(&mut agent, &event, &mut tracer, &mut rng)
        .is_none());
    assert_eq!(gate.stats().skipped_snat, 1);
    assert_eq!(
        agent.traceroutes_used(),
        0,
        "no budget burned on SNAT flows"
    );
    let _: u32 = rng.gen(); // rng still usable (gate borrows ended)
}
