//! Scenario-matrix conformance: every named case in the standard grid
//! must land inside its accuracy envelope, at a smoke scale fast enough
//! for tier-1 CI. This is the repo's answer to "does 007 still work when
//! the scenario gets weird?" — a failing case here means a voting-scheme
//! regression (or an envelope that needs a documented recalibration).

use vigil::matrix::{filter_cases, MatrixRunner};
use vigil::prelude::*;

fn smoke_runner(threads: usize) -> MatrixRunner {
    let mut runner = MatrixRunner::new(SweepEngine::new(threads));
    // The CI smoke scale; `vigil-sim matrix` defaults to 3 × 2.
    runner.trials = 2;
    runner.epochs = 1;
    runner
}

#[test]
fn grid_spans_the_required_axes() {
    let cases = scenarios::standard_matrix();
    assert!(cases.len() >= 24, "grid shrank to {} cases", cases.len());

    let mut kinds: Vec<&str> = cases.iter().flat_map(|c| c.fault_labels()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert!(
        kinds.len() >= 5,
        "grid spans only fault kinds {kinds:?} (≥ 5 required)"
    );

    let mut topos: Vec<&str> = cases.iter().map(|c| c.topology).collect();
    topos.sort_unstable();
    topos.dedup();
    assert!(
        topos.len() >= 2,
        "grid spans only topologies {topos:?} (≥ 2 required)"
    );
}

#[test]
fn every_case_conforms_to_its_envelope() {
    let cases = scenarios::standard_matrix();
    let report = smoke_runner(2).run(&cases);
    assert_eq!(report.cases.len(), cases.len());
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "cases outside their envelopes:\n{}",
        failures
            .iter()
            .map(|c| format!("  {}: {}", c.name, c.violations.join("; ")))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn silent_blackholes_are_asserted_blind() {
    // The Ensafi-et-al. drop class: intentional/silent drops evade
    // endpoint signals. The matrix *asserts* 007's documented blindness —
    // no establishment, no trace, no blame.
    let cases = filter_cases(scenarios::standard_matrix(), "-silent");
    assert!(!cases.is_empty());
    let report = smoke_runner(1).run(&cases);
    for c in &report.cases {
        assert!(c.pass, "{}: {:?}", c.name, c.violations);
        assert_eq!(
            c.metrics.traced_flows, 0,
            "{}: a silent blackhole produced evidence",
            c.name
        );
        assert_eq!(c.metrics.blamed_per_epoch, 0.0, "{}", c.name);
    }
}

#[test]
fn filtering_does_not_move_a_cases_numbers() {
    // Seeds derive from case names, so a case's metrics are identical
    // whether it runs alone or inside the full grid.
    let all = scenarios::standard_matrix();
    let target = "gray/k3";
    let full = smoke_runner(2).run(&all);
    let solo_cases = filter_cases(all, target);
    assert_eq!(solo_cases.len(), 1);
    let solo = smoke_runner(2).run(&solo_cases);

    let in_full = full.cases.iter().find(|c| c.name == target).unwrap();
    let alone = &solo.cases[0];
    assert_eq!(
        serde_json::to_string(&in_full.metrics).unwrap(),
        serde_json::to_string(&alone.metrics).unwrap(),
        "filtering changed {target}'s numbers"
    );
}
