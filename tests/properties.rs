//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary topologies, traffic, and fault draws.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vigil::prelude::*;
use vigil_analysis::{detect, Algorithm1Config, FlowEvidence, VoteTally, VoteWeight};
use vigil_fabric::flowsim::{simulate_epoch, SimConfig};
use vigil_packet::FiveTuple;
use vigil_topology::{HostId, Node};

/// Arbitrary-but-valid Clos parameters, kept small for test speed.
fn arb_params() -> impl Strategy<Value = ClosParams> {
    (1u16..=3, 2u16..=5, 1u16..=4, 1u16..=4, 1u16..=4).prop_map(|(npod, n0, n1, n2, h)| {
        ClosParams {
            npod,
            n0,
            n1,
            n2: if npod > 1 { n2.max(1) } else { n2 },
            hosts_per_tor: h,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Routing always yields structurally valid paths: consecutive nodes
    /// joined by the right directional link, host endpoints, length ∈
    /// {2, 4, 6}.
    #[test]
    fn routes_are_valid_paths(params in arb_params(), seed in any::<u64>(),
                              sport in 1024u16..65000) {
        let topo = ClosTopology::new(params, seed).unwrap();
        let hosts = topo.num_hosts() as u32;
        prop_assume!(hosts >= 2);
        let src = HostId(seed as u32 % hosts);
        let dst = HostId((seed as u32 / 7 + 1) % hosts);
        prop_assume!(src != dst);
        let tuple = FiveTuple::tcp(topo.host_ip(src), sport, topo.host_ip(dst), 443);
        let path = topo.route(&tuple, src, dst).unwrap();

        prop_assert!(matches!(path.nodes.first(), Some(Node::Host(h)) if *h == src));
        prop_assert!(matches!(path.nodes.last(), Some(Node::Host(h)) if *h == dst));
        prop_assert!([2usize, 4, 6].contains(&path.hop_count()),
                     "unexpected hop count {}", path.hop_count());
        for (i, l) in path.links.iter().enumerate() {
            let link = topo.link(*l);
            prop_assert_eq!(link.from, path.nodes[i]);
            prop_assert_eq!(link.to, path.nodes[i + 1]);
        }
    }

    /// ECMP stickiness: the same five-tuple routes identically on
    /// repeated calls (the property probes rely on, §4.2).
    #[test]
    fn routing_is_a_function_of_the_tuple(params in arb_params(), seed in any::<u64>()) {
        let topo = ClosTopology::new(params, seed).unwrap();
        let hosts = topo.num_hosts() as u32;
        prop_assume!(hosts >= 2);
        let src = HostId(0);
        let dst = HostId(hosts - 1);
        prop_assume!(src != dst);
        let tuple = FiveTuple::tcp(topo.host_ip(src), 50_000, topo.host_ip(dst), 443);
        let a = topo.route(&tuple, src, dst).unwrap();
        let b = topo.route(&tuple, src, dst).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Drop accounting conserves mass: Σ per-flow drops = Σ per-link
    /// drops, and retransmissions = drops per flow.
    #[test]
    fn epoch_drop_conservation(params in arb_params(), seed in any::<u64>(),
                               failures in 0u32..3, rate_milli in 1u32..50) {
        let topo = ClosTopology::new(params, seed).unwrap();
        prop_assume!(topo.num_hosts() >= 2);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let eligible = topo.links().iter().filter(|l| !l.kind.is_host_link()).count() as u32;
        let plan = FaultPlan {
            failures: failures.min(eligible),
            failure_rate: RateRange::fixed(f64::from(rate_milli) / 1000.0),
            ..FaultPlan::paper_default(0)
        };
        let plan = FaultPlan { failures: failures.min(eligible), ..plan };
        let faults = plan.build(&topo, &mut rng);
        let traffic = TrafficSpec {
            conns_per_host: ConnCount::Fixed(5),
            packets_per_flow: PacketCount::Fixed(30),
            ..TrafficSpec::paper_default()
        };
        let out = simulate_epoch(&topo, &faults, &traffic, &SimConfig::default(), &mut rng);
        let per_flow: u64 = out.flows.iter().map(|f| f.total_drops() as u64).sum();
        let per_link: u64 = out.ground_truth.drops_per_link.iter().sum();
        prop_assert_eq!(per_flow, per_link);
        for f in &out.flows {
            prop_assert_eq!(f.retransmissions, f.total_drops());
            // Drops only on links of the flow's own path.
            for (l, _) in &f.drops_per_link {
                prop_assert!(f.path.contains_link(*l));
            }
        }
    }

    /// Algorithm 1's detections always carry votes above the configured
    /// threshold, never repeat a link, and are ordered by pick votes.
    #[test]
    fn algorithm1_detection_invariants(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..30, 1..6), 0..60),
        threshold_pct in 1u32..20)
    {
        let evidence: Vec<FlowEvidence> = paths.iter().map(|p| {
            let mut q: Vec<_> = p.iter().map(|l| vigil_topology::LinkId(*l)).collect();
            q.sort_unstable();
            q.dedup();
            FlowEvidence::new(q, 1)
        }).collect();
        let config = Algorithm1Config {
            threshold_frac: f64::from(threshold_pct) / 100.0,
            // The fixed bar is the variant with an invariant expressible
            // against the initial total; the Current bar shrinks with
            // retraction and is exercised by the pipeline tests.
            threshold_base: vigil_analysis::ThresholdBase::Initial,
            ..Algorithm1Config::default()
        };
        let out = detect(&evidence, 30, &config);
        let initial_total = VoteTally::tally(&evidence, 30, config.weight).total();
        let mut seen = std::collections::HashSet::new();
        for d in &out.detections {
            prop_assert!(seen.insert(d.link), "duplicate detection");
            prop_assert!(d.votes >= 1e-9);
            // Initial base: every pick cleared the fixed bar.
            prop_assert!(d.votes + 1e-9 >= config.threshold_frac * initial_total
                         || initial_total == 0.0);
        }
        for w in out.detections.windows(2) {
            prop_assert!(w[0].votes + 1e-9 >= w[1].votes);
        }
    }

    /// Vote weights: a flow's total cast mass under 1/h is exactly 1.
    #[test]
    fn unit_vote_mass(links in proptest::collection::vec(0u32..50, 1..8)) {
        let mut q: Vec<_> = links.iter().map(|l| vigil_topology::LinkId(*l)).collect();
        q.sort_unstable();
        q.dedup();
        let e = FlowEvidence::new(q, 1);
        let mut t = VoteTally::new(50);
        t.cast(&e, VoteWeight::ReciprocalPathLength);
        prop_assert!((t.total() - 1.0).abs() < 1e-9);
    }

    /// Theorem 1's budget is monotone: more hosts per rack ⇒ smaller
    /// per-host budget; higher Tmax ⇒ larger.
    #[test]
    fn theorem1_monotonicity(params in arb_params(), tmax in 10.0f64..500.0) {
        use vigil_topology::bounds::theorem1_ct_bound;
        let base = theorem1_ct_bound(&params, tmax);
        prop_assert!(base >= 0.0);
        let denser = ClosParams {
            hosts_per_tor: params.hosts_per_tor.saturating_mul(2).min(200),
            ..params
        };
        if denser.hosts_per_tor > params.hosts_per_tor {
            prop_assert!(theorem1_ct_bound(&denser, tmax) <= base + 1e-12);
        }
        prop_assert!(theorem1_ct_bound(&params, tmax * 2.0) >= base - 1e-12);
    }
}
